// Occupancy metadata + TF classification (src/lod/occupancy.hpp):
// brick/cell interval coverage, the conservative baked-table emptiness
// rule (checked against Texture1D::sample's exact lerp semantics), the
// Chebyshev empty-space transform, the decimation-aware cullable() rule
// and the per-(volume, layout, TF) classification memoization.

#include "lod/occupancy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "volren/bricking.hpp"
#include "volren/transfer_function.hpp"
#include "volren/volume.hpp"

namespace vrmr::lod {
namespace {

volren::BrickLayout layout_for(const volren::Volume& volume, int brick_size) {
  return volren::BrickLayout(volume.dims(), volume.world_extent(),
                             Int3{brick_size, brick_size, brick_size},
                             /*ghost=*/1);
}

/// Alpha zero on [0, 0.5], ramping opaque above — values below the knee
/// are provably invisible.
volren::TransferFunction low_cut_tf() {
  return volren::TransferFunction(
      {{0.0f, Vec4{0, 0, 0, 0}},
       {0.5f, Vec4{0, 0, 0, 0}},
       {0.6f, Vec4{1, 1, 1, 0.4f}},
       {1.0f, Vec4{1, 1, 1, 0.9f}}});
}

/// Two-zone field: 0.1 in the low corner octant (x, y, z < 33), 0.8
/// beyond. With 16^3 bricks over 48^3 the 8 corner bricks' padded
/// regions (max stored coordinate 32) lie wholly in the low zone.
volren::Volume octant_volume() {
  return volren::Volume::procedural("octant", {48, 48, 48}, [](Int3 p) {
    return (p.x < 33 && p.y < 33 && p.z < 33) ? 0.1f : 0.8f;
  });
}

/// Texture1D::sample's exact arithmetic on a baked table (alpha only).
float sampled_alpha(const std::vector<Vec4>& table, float t) {
  const int n = static_cast<int>(table.size());
  const float x = clampf(t, 0.0f, 1.0f) * static_cast<float>(n) - 0.5f;
  const int i0 = static_cast<int>(std::floor(x));
  const float frac = x - static_cast<float>(i0);
  const int lo = std::clamp(i0, 0, n - 1);
  const int hi = std::clamp(i0 + 1, 0, n - 1);
  return lerpf(table[static_cast<std::size_t>(lo)].w,
               table[static_cast<std::size_t>(hi)].w, frac);
}

TEST(OccupancyIndex, BrickAndCellIntervalsCoverEveryStoredVoxel) {
  // A field with full spatial variation so every interval is nontrivial.
  const volren::Volume volume =
      volren::Volume::procedural("ramp", {24, 24, 24}, [](Int3 p) {
        return static_cast<float>(p.x + 31 * p.y + 7 * p.z) / 1000.0f;
      });
  const volren::BrickLayout layout = layout_for(volume, 12);
  const OccupancyIndex index(volume, layout);
  ASSERT_EQ(index.num_bricks(), layout.num_bricks());
  EXPECT_TRUE(index.exact());

  for (const volren::BrickInfo& info : layout.bricks()) {
    float mn = 1e30f, mx = -1e30f;
    for (int z = 0; z < info.padded_dims.z; ++z)
      for (int y = 0; y < info.padded_dims.y; ++y)
        for (int x = 0; x < info.padded_dims.x; ++x) {
          const float v =
              volume.voxel_clamped(info.padded_origin + Int3{x, y, z});
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
    const BrickOccupancy& occ = index.brick(info.id);
    EXPECT_EQ(occ.min_value, mn) << "brick " << info.id;
    EXPECT_EQ(occ.max_value, mx) << "brick " << info.id;
    // Every cell interval is within the brick interval, and their union
    // reaches both extremes (no stored voxel escapes every cell).
    ASSERT_EQ(occ.cell_min.size(),
              static_cast<std::size_t>(occ.cells.volume()));
    for (std::size_t c = 0; c < occ.cell_min.size(); ++c) {
      EXPECT_GE(occ.cell_min[c], mn);
      EXPECT_LE(occ.cell_max[c], mx);
      EXPECT_LE(occ.cell_min[c], occ.cell_max[c]);
    }
  }
}

TEST(Classification, TfTransparentBricksAreFoundExactly) {
  const volren::Volume volume = octant_volume();
  const volren::BrickLayout layout = layout_for(volume, 16);
  const OccupancyIndex index(volume, layout);
  const TfClassification cls = classify(index, low_cut_tf());

  EXPECT_TRUE(cls.exact);
  EXPECT_EQ(cls.table_entries, 256);
  EXPECT_EQ(cls.tf_signature, low_cut_tf().signature());
  // Exactly the 8 low-corner bricks are empty (their padded regions
  // never touch the 0.8 zone); every brick touching 0.8 is not.
  EXPECT_EQ(cls.bricks_empty_hull, 8);
  EXPECT_EQ(cls.bricks_empty_cells, 8);
  ASSERT_EQ(static_cast<int>(cls.bricks.size()), layout.num_bricks());
  for (const volren::BrickInfo& info : layout.bricks()) {
    const bool low_corner = info.grid_pos.x <= 1 && info.grid_pos.y <= 1 &&
                            info.grid_pos.z <= 1;
    EXPECT_EQ(cls.bricks[static_cast<std::size_t>(info.id)].empty_hull,
              low_corner)
        << "brick " << info.id;
    // empty_hull implies empty_cells (cell intervals are sub-intervals).
    if (cls.bricks[static_cast<std::size_t>(info.id)].empty_hull) {
      EXPECT_TRUE(cls.bricks[static_cast<std::size_t>(info.id)].empty_cells);
    }
  }
}

TEST(Classification, EmptyHullIsSoundAgainstTheBakedTableLerp) {
  // The soundness claim culling rests on: for an empty-classified
  // brick, EVERY normalized scalar in [min, max] samples to alpha
  // exactly 0 under Texture1D's own lerp arithmetic.
  const volren::Volume volume = octant_volume();
  const volren::BrickLayout layout = layout_for(volume, 16);
  const OccupancyIndex index(volume, layout);
  const volren::TransferFunction tf = low_cut_tf();
  const TfClassification cls = classify(index, tf);
  const std::vector<Vec4> table = tf.bake(256);

  int checked = 0;
  for (int id = 0; id < index.num_bricks(); ++id) {
    if (!cls.bricks[static_cast<std::size_t>(id)].empty_hull) continue;
    const BrickOccupancy& occ = index.brick(id);
    for (int i = 0; i <= 1000; ++i) {
      const float t = occ.min_value + (occ.max_value - occ.min_value) *
                                          static_cast<float>(i) / 1000.0f;
      ASSERT_EQ(sampled_alpha(table, t), 0.0f) << "brick " << id << " t=" << t;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 8);
}

TEST(Classification, ChebyshevIsTheChessboardDistanceToNonEmptyCells) {
  // One brick (the whole volume) with a hot core: cells near the core
  // are distance 0, farther empty cells count chessboard rings.
  const volren::Volume volume =
      volren::Volume::procedural("hotcore", {32, 32, 32}, [](Int3 p) {
        const bool hot = p.x >= 12 && p.x <= 19 && p.y >= 12 && p.y <= 19 &&
                         p.z >= 12 && p.z <= 19;
        return hot ? 0.9f : 0.1f;
      });
  const volren::BrickLayout layout = layout_for(volume, 32);
  const OccupancyIndex index(volume, layout, /*cell_voxels=*/4);
  const TfClassification cls = classify(index, low_cut_tf());

  ASSERT_EQ(index.num_bricks(), 1);
  const BrickOccupancy& occ = index.brick(0);
  const BrickClassification& brick = cls.bricks[0];
  ASSERT_EQ(brick.chebyshev.size(),
            static_cast<std::size_t>(occ.cells.volume()));
  EXPECT_FALSE(brick.empty_cells);
  EXPECT_GT(brick.empty_cell_fraction, 0.0f);
  EXPECT_LT(brick.empty_cell_fraction, 1.0f);

  // Brute-force reference: distance 0 marks the non-empty set; every
  // other cell's value must equal its true L-inf distance to that set.
  std::vector<Int3> sources;
  for (int z = 0; z < occ.cells.z; ++z)
    for (int y = 0; y < occ.cells.y; ++y)
      for (int x = 0; x < occ.cells.x; ++x)
        if (brick.chebyshev[occ.cell_index({x, y, z})] == 0)
          sources.push_back({x, y, z});
  ASSERT_FALSE(sources.empty());
  int max_dist = 0;
  for (int z = 0; z < occ.cells.z; ++z)
    for (int y = 0; y < occ.cells.y; ++y)
      for (int x = 0; x < occ.cells.x; ++x) {
        int best = 1 << 20;
        for (const Int3& s : sources) {
          best = std::min(best, std::max({std::abs(x - s.x), std::abs(y - s.y),
                                          std::abs(z - s.z)}));
        }
        EXPECT_EQ(brick.chebyshev[occ.cell_index({x, y, z})], best)
            << "cell " << x << "," << y << "," << z;
        max_dist = std::max(max_dist, best);
      }
  EXPECT_GT(max_dist, 0);  // the corner cells really are empty rings out
}

TEST(Classification, AllEmptyBrickSaturatesTheTransform) {
  const volren::Volume volume =
      volren::Volume::procedural("flat", {16, 16, 16},
                                 [](Int3) { return 0.1f; });
  const volren::BrickLayout layout = layout_for(volume, 16);
  const OccupancyIndex index(volume, layout, /*cell_voxels=*/4);
  const TfClassification cls = classify(index, low_cut_tf());
  const BrickOccupancy& occ = index.brick(0);
  const std::uint16_t saturate = static_cast<std::uint16_t>(
      std::max({occ.cells.x, occ.cells.y, occ.cells.z}));
  for (const std::uint16_t d : cls.bricks[0].chebyshev) EXPECT_EQ(d, saturate);
  EXPECT_TRUE(cls.bricks[0].empty_cells);
  EXPECT_EQ(cls.bricks[0].empty_cell_fraction, 1.0f);
}

TEST(Classification, SubsampledScansNeverCull) {
  // A stride-2 scan could miss the one voxel that matters; the index is
  // metadata-only and cullable() must refuse it even for bricks the
  // subsample happens to classify empty.
  const volren::Volume volume = octant_volume();
  const volren::BrickLayout layout = layout_for(volume, 16);
  const OccupancyIndex coarse(volume, layout, /*cell_voxels=*/8,
                              /*build_stride=*/2);
  EXPECT_FALSE(coarse.exact());
  const TfClassification cls = classify(coarse, low_cut_tf());
  EXPECT_FALSE(cls.exact);
  EXPECT_GT(cls.bricks_empty_hull, 0);  // it still *classifies*...
  for (int id = 0; id < layout.num_bricks(); ++id) {
    EXPECT_FALSE(cls.cullable(id, 1));  // ...but never licenses a cull
    EXPECT_FALSE(cls.cullable(id, 2));
  }
}

TEST(Classification, CullableAppliesTheDecimationRule) {
  // Unit-check the rule on a hand-built classification: the fine
  // per-cell verdict is only sound at decimation == 1 (a decimated
  // support pair can straddle cells); the hull verdict holds at any
  // decimation.
  TfClassification cls;
  cls.exact = true;
  cls.bricks.resize(2);
  cls.bricks[0].empty_hull = true;   // implies empty at every decimation
  cls.bricks[0].empty_cells = true;
  cls.bricks[1].empty_hull = false;  // cell-empty only
  cls.bricks[1].empty_cells = true;
  EXPECT_TRUE(cls.cullable(0, 1));
  EXPECT_TRUE(cls.cullable(0, 4));
  EXPECT_TRUE(cls.cullable(1, 1));
  EXPECT_FALSE(cls.cullable(1, 4));
}

TEST(ClassificationCache, MemoizesPerVolumeLayoutAndTfSignature) {
  const volren::Volume volume = octant_volume();
  const volren::BrickLayout layout = layout_for(volume, 16);
  const OccupancyIndex index(volume, layout);
  const std::uint64_t sig = layout.signature();
  ClassificationCache cache;
  EXPECT_EQ(cache.classifications_built(), 0u);

  const auto first = cache.lookup_or_build(7, sig, index, low_cut_tf());
  EXPECT_EQ(cache.classifications_built(), 1u);
  // Same (volume, layout, TF): the cached object itself, no rebuild —
  // an equal-by-value TransferFunction reconstructed per frame still
  // hits (the signature is content-addressed, not identity-addressed).
  const auto second = cache.lookup_or_build(7, sig, index, low_cut_tf());
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(cache.classifications_built(), 1u);

  // A different TF is a different classification.
  const auto bone = cache.lookup_or_build(
      7, sig, index, volren::TransferFunction::bone());
  EXPECT_NE(bone.get(), first.get());
  EXPECT_EQ(cache.classifications_built(), 2u);
  // A different volume id never shares entries.
  (void)cache.lookup_or_build(8, sig, index, low_cut_tf());
  EXPECT_EQ(cache.classifications_built(), 3u);

  // Invalidation drops exactly that volume's entries.
  cache.invalidate_volume(7);
  (void)cache.lookup_or_build(8, sig, index, low_cut_tf());
  EXPECT_EQ(cache.classifications_built(), 3u);  // 8 survived
  (void)cache.lookup_or_build(7, sig, index, low_cut_tf());
  EXPECT_EQ(cache.classifications_built(), 4u);  // 7 rebuilt
}

TEST(TransferFunctionIdentity, SignatureAndEqualityFollowThePointTable) {
  using volren::TransferFunction;
  EXPECT_TRUE(TransferFunction::bone() == TransferFunction::bone());
  EXPECT_EQ(TransferFunction::bone().signature(),
            TransferFunction::bone().signature());
  EXPECT_FALSE(TransferFunction::bone() == TransferFunction::fire());
  EXPECT_NE(TransferFunction::bone().signature(),
            TransferFunction::fire().signature());

  // A one-ULP-scale nudge to a single control point changes identity
  // (the signature hashes raw float bits — no tolerance).
  std::vector<volren::TransferPoint> points = TransferFunction::bone().points();
  points.back().rgba.w += 1e-6f;
  const TransferFunction nudged(std::move(points));
  EXPECT_FALSE(nudged == TransferFunction::bone());
  EXPECT_NE(nudged.signature(), TransferFunction::bone().signature());
}

}  // namespace
}  // namespace vrmr::lod
