// LOD brick pyramid invariants (src/lod/pyramid.hpp): exact halving,
// identical brick grids across levels, bit-identical world boxes (the
// mixed-level seam-freedom argument), decimation-style level sampling,
// distinct cache signatures, and the per-brick level selector.

#include "lod/pyramid.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "volren/bricking.hpp"
#include "volren/datasets.hpp"
#include "volren/volume.hpp"

namespace vrmr::lod {
namespace {

volren::BrickLayout layout_for(const volren::Volume& volume, int brick_size) {
  return volren::BrickLayout(volume.dims(), volume.world_extent(),
                             Int3{brick_size, brick_size, brick_size},
                             /*ghost=*/1);
}

TEST(LodPyramid, ExactHalvingBuildsTheFullLadder) {
  // 48^3 with 24^3 bricks: 48/24/12/6 dims, 24/12/6/3 brick cores —
  // every halving exact, so the default cap of 4 levels is reached.
  const volren::Volume volume = volren::datasets::skull({48, 48, 48});
  const LodPyramid pyramid(volume, layout_for(volume, 24));
  ASSERT_EQ(pyramid.num_levels(), 4);
  EXPECT_EQ(pyramid.base(), &volume);

  for (int l = 0; l < pyramid.num_levels(); ++l) {
    const LodLevel& lvl = pyramid.level(l);
    EXPECT_EQ(lvl.level, l);
    EXPECT_EQ(lvl.stride, 1 << l);
    EXPECT_EQ(lvl.volume->dims(), (Int3{48 >> l, 48 >> l, 48 >> l}));
    EXPECT_EQ(lvl.layout->brick_dims(), (Int3{24 >> l, 24 >> l, 24 >> l}));
  }
  // Level 0 aliases the base volume outright (no copy, no wrapper).
  EXPECT_EQ(pyramid.level(0).volume.get(), &volume);
}

TEST(LodPyramid, LevelsShareTheBaseBrickGridWithIdenticalWorldBoxes) {
  const volren::Volume volume = volren::datasets::supernova({64, 32, 32});
  const volren::BrickLayout base = layout_for(volume, 16);
  const LodPyramid pyramid(volume, base);
  ASSERT_GE(pyramid.num_levels(), 3);

  for (int l = 1; l < pyramid.num_levels(); ++l) {
    const volren::BrickLayout& layout = *pyramid.level(l).layout;
    ASSERT_EQ(layout.num_bricks(), base.num_bricks()) << "level " << l;
    EXPECT_EQ(layout.grid_dims(), base.grid_dims());
    for (const volren::BrickInfo& brick : layout.bricks()) {
      const Aabb& coarse = brick.world_box;
      const Aabb& fine = base.brick(brick.id).world_box;
      // Bit-identical, not epsilon-close: the half-open sample-ownership
      // rule partitions rays exactly only if the plane constants agree.
      EXPECT_EQ(coarse.lo.x, fine.lo.x);
      EXPECT_EQ(coarse.lo.y, fine.lo.y);
      EXPECT_EQ(coarse.lo.z, fine.lo.z);
      EXPECT_EQ(coarse.hi.x, fine.hi.x);
      EXPECT_EQ(coarse.hi.y, fine.hi.y);
      EXPECT_EQ(coarse.hi.z, fine.hi.z);
    }
  }
}

TEST(LodPyramid, LevelVoxelsAreStrideDecimatedBaseVoxels) {
  const volren::Volume volume = volren::datasets::skull({32, 32, 32});
  const LodPyramid pyramid(volume, layout_for(volume, 16));
  ASSERT_GE(pyramid.num_levels(), 2);
  const LodLevel& l1 = pyramid.level(1);
  for (int z = 0; z < 16; z += 5)
    for (int y = 0; y < 16; y += 5)
      for (int x = 0; x < 16; x += 5) {
        EXPECT_EQ(l1.volume->voxel_clamped({x, y, z}),
                  volume.voxel_clamped({2 * x, 2 * y, 2 * z}));
      }
}

TEST(LodPyramid, HaltsWhenHalvingStopsBeingExact) {
  // Odd volume dims: no level beyond 0 exists at all.
  const volren::Volume odd = volren::datasets::skull({33, 33, 33});
  EXPECT_EQ(LodPyramid(odd, layout_for(odd, 11)).num_levels(), 1);

  // 20 -> 10 -> 5: the halvings to 10 and 5 are both exact (even
  // inputs), but 5 is odd so no fourth level can exist.
  const volren::Volume volume = volren::datasets::skull({40, 40, 40});
  const LodPyramid pyramid(volume, layout_for(volume, 20));
  EXPECT_EQ(pyramid.num_levels(), 3);
  EXPECT_EQ(pyramid.level(2).layout->brick_dims(), (Int3{5, 5, 5}));
}

TEST(LodPyramid, HaltsBeforeDegenerateBrickCores) {
  // 16^3 volume, 4^3 bricks: 4 -> 2 is fine, 2 -> 1 would violate the
  // BrickLayout core-axis > 1 requirement and must not be built.
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const LodPyramid pyramid(volume, layout_for(volume, 4), /*max_levels=*/8);
  EXPECT_EQ(pyramid.num_levels(), 2);
  EXPECT_EQ(pyramid.level(1).layout->brick_dims(), (Int3{2, 2, 2}));
}

TEST(LodPyramid, ClampBoundsRequestsToBuiltLevels) {
  const volren::Volume volume = volren::datasets::skull({32, 32, 32});
  const LodPyramid pyramid(volume, layout_for(volume, 16), /*max_levels=*/2);
  ASSERT_EQ(pyramid.num_levels(), 2);
  EXPECT_EQ(pyramid.clamp(-3), 0);
  EXPECT_EQ(pyramid.clamp(0), 0);
  EXPECT_EQ(pyramid.clamp(1), 1);
  EXPECT_EQ(pyramid.clamp(7), 1);
}

TEST(LodPyramid, CacheSignaturesNeverAliasAcrossLevelsOrVolumeSizes) {
  const volren::Volume big = volren::datasets::skull({32, 32, 32});
  const LodPyramid pyramid(big, layout_for(big, 16));
  ASSERT_GE(pyramid.num_levels(), 2);
  for (int a = 0; a < pyramid.num_levels(); ++a)
    for (int b = a + 1; b < pyramid.num_levels(); ++b)
      EXPECT_NE(pyramid.level(a).cache_signature, pyramid.level(b).cache_signature);

  // The trap BrickLayout::signature exists for: a fine rebricking of
  // the BASE volume can share brick dims with a pyramid level (32^3 at
  // brick 8 vs level 1's 16^3 at brick 8). Same volume id, same brick
  // dims, different payloads — only the volume dims in the signature
  // keep them from aliasing in the cache.
  const volren::BrickLayout fine_base = layout_for(big, 8);
  ASSERT_EQ(pyramid.level(1).layout->brick_dims(), fine_base.brick_dims());
  EXPECT_NE(pyramid.level(1).cache_signature, fine_base.signature());
}

TEST(LodPyramid, CoarseLevelsShrinkDeviceBytesRoughlyEightfold) {
  const volren::Volume volume = volren::datasets::skull({48, 48, 48});
  const LodPyramid pyramid(volume, layout_for(volume, 24));
  for (int l = 1; l < pyramid.num_levels(); ++l) {
    // Ghost shells keep the ratio below exactly 8x; it must still be
    // a large constant-factor shrink (> 4x) at every step.
    EXPECT_LT(4 * pyramid.level(l).device_bytes,
              pyramid.level(l - 1).device_bytes)
        << "level " << l;
  }
}

TEST(SelectLevel, QualityOneIsExactlyTheRequestedFloor) {
  const volren::Volume volume = volren::datasets::skull({48, 48, 48});
  const LodPyramid pyramid(volume, layout_for(volume, 24));
  const volren::BrickInfo& brick = pyramid.level(0).layout->brick(0);
  // The pixel-identity default: no footprint-driven coarsening, even
  // for a brick projecting to a single pixel.
  EXPECT_EQ(select_level(pyramid, brick, 1, 0, 1.0f), 0);
  EXPECT_EQ(select_level(pyramid, brick, 1, 2, 1.0f), 2);
  // Floors beyond the pyramid clamp.
  EXPECT_EQ(select_level(pyramid, brick, 1, 9, 1.0f),
            pyramid.num_levels() - 1);
}

TEST(SelectLevel, SmallFootprintsCoarsenUnderReducedQuality) {
  const volren::Volume volume = volren::datasets::skull({48, 48, 48});
  const LodPyramid pyramid(volume, layout_for(volume, 24));
  ASSERT_EQ(pyramid.num_levels(), 4);
  const volren::BrickInfo& brick = pyramid.level(0).layout->brick(0);
  ASSERT_EQ(brick.core_dims, (Int3{24, 24, 24}));

  // quality 0.5, 24-voxel core: level L+1 allowed while 24 >> (L+1) >=
  // 0.5 * projected_pixels.
  EXPECT_EQ(select_level(pyramid, brick, 24, 0, 0.5f), 1);  // 12 >= 12, 6 < 12
  EXPECT_EQ(select_level(pyramid, brick, 6, 0, 0.5f), 3);   // 3 >= 3 at L3
  // A large footprint never coarsens below the floor.
  EXPECT_EQ(select_level(pyramid, brick, 4096, 0, 0.5f), 0);
  // Off-screen bricks (no pixels) stay at the floor — they are culled
  // by footprints, not by LOD.
  EXPECT_EQ(select_level(pyramid, brick, 0, 0, 0.5f), 0);
}

TEST(LodPyramid, SharedLayoutOverloadAliasesTheCallerLayout) {
  const volren::Volume volume = volren::datasets::skull({32, 32, 32});
  auto layout = std::make_shared<const volren::BrickLayout>(layout_for(volume, 16));
  const LodPyramid pyramid(volume, layout);
  EXPECT_EQ(pyramid.level(0).layout.get(), layout.get());
  EXPECT_EQ(pyramid.level(0).cache_signature, layout->signature());
}

}  // namespace
}  // namespace vrmr::lod
