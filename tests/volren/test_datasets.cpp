#include <gtest/gtest.h>

#include "volren/datasets.hpp"

namespace vrmr::volren {
namespace {

struct DatasetCase {
  std::string name;
  Int3 dims;
};

class DatasetProperties : public testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetProperties, ValuesInUnitRange) {
  const auto& [name, dims] = GetParam();
  const Volume v = datasets::by_name(name, dims);
  // Sample a lattice of voxels across the whole extent.
  for (int z = 0; z < dims.z; z += std::max(1, dims.z / 7)) {
    for (int y = 0; y < dims.y; y += std::max(1, dims.y / 7)) {
      for (int x = 0; x < dims.x; x += std::max(1, dims.x / 7)) {
        const float val = v.voxel_clamped({x, y, z});
        ASSERT_GE(val, 0.0f) << name << " at " << Int3{x, y, z};
        ASSERT_LE(val, 1.0f) << name << " at " << Int3{x, y, z};
      }
    }
  }
}

TEST_P(DatasetProperties, HasStructure) {
  // The proxies must be neither empty nor solid: some occupancy, some
  // empty space (what drives early-ray termination and fragment
  // discard rates in the evaluation).
  const auto& [name, dims] = GetParam();
  const Volume v = datasets::by_name(name, dims);
  int occupied = 0, total = 0;
  for (int z = 0; z < dims.z; z += 2) {
    for (int y = 0; y < dims.y; y += 2) {
      for (int x = 0; x < dims.x; x += 2) {
        ++total;
        if (v.voxel_clamped({x, y, z}) > 0.05f) ++occupied;
      }
    }
  }
  const double fraction = static_cast<double>(occupied) / total;
  EXPECT_GT(fraction, 0.02) << name;
  EXPECT_LT(fraction, 0.95) << name;
}

TEST_P(DatasetProperties, DeterministicAcrossInstances) {
  const auto& [name, dims] = GetParam();
  const Volume a = datasets::by_name(name, dims);
  const Volume b = datasets::by_name(name, dims);
  for (int i = 0; i < dims.x; ++i) {
    const Int3 p{i, (i * 7) % dims.y, (i * 3) % dims.z};
    EXPECT_EQ(a.voxel_clamped(p), b.voxel_clamped(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, DatasetProperties,
    testing::Values(DatasetCase{"skull", {32, 32, 32}},
                    DatasetCase{"skull", {48, 40, 44}},
                    DatasetCase{"supernova", {32, 32, 32}},
                    DatasetCase{"plume", {16, 16, 64}}),
    [](const testing::TestParamInfo<DatasetCase>& param_info) {
      return param_info.param.name + "_" + std::to_string(param_info.param.dims.x) +
             "x" + std::to_string(param_info.param.dims.y) + "x" +
             std::to_string(param_info.param.dims.z);
    });

TEST(Datasets, ResolutionIndependentField) {
  // The same dataset at two resolutions describes the same normalized
  // field: a voxel and its scaled counterpart should be close.
  const Volume lo = datasets::skull({16, 16, 16});
  const Volume hi = datasets::skull({32, 32, 32});
  int close = 0, total = 0;
  for (int z = 0; z < 16; ++z) {
    for (int x = 0; x < 16; ++x) {
      const float a = lo.voxel_clamped({x, 8, z});
      const float b = hi.voxel_clamped({2 * x, 16, 2 * z});
      ++total;
      if (std::abs(a - b) < 0.25f) ++close;
    }
  }
  EXPECT_GT(static_cast<double>(close) / total, 0.7);
}

TEST(Datasets, PlumeDefaultsToPaperAspect) {
  const Volume p = datasets::plume();
  EXPECT_EQ(p.dims(), (Int3{512, 512, 2048}));
  EXPECT_EQ(p.name(), "plume");
}

TEST(Datasets, ByNameRejectsUnknown) {
  EXPECT_THROW((void)datasets::by_name("galaxy", {8, 8, 8}), CheckError);
}

TEST(Datasets, SkullHasDenseBoneShell) {
  // A ray through the middle must encounter the high-density shell.
  const Volume v = datasets::skull({64, 64, 64});
  float peak = 0.0f;
  for (int x = 0; x < 64; ++x) peak = std::max(peak, v.voxel_clamped({x, 32, 32}));
  EXPECT_GT(peak, 0.5f);
}

TEST(Datasets, PlumeRisesAlongZ) {
  // Plume density near the base center should exceed far-field corners.
  const Volume v = datasets::plume({32, 32, 128});
  const float base_center = v.voxel_clamped({16, 16, 8});
  const float corner = v.voxel_clamped({2, 2, 120});
  EXPECT_GT(base_center, corner);
}

}  // namespace
}  // namespace vrmr::volren
