#include <gtest/gtest.h>

#include "volren/volume.hpp"

namespace vrmr::volren {
namespace {

float ramp(Int3 v) { return static_cast<float>(v.x + 10 * v.y + 100 * v.z); }

TEST(Volume, WorldExtentPreservesAspect) {
  const Volume cube = Volume::procedural("c", {64, 64, 64}, ramp);
  EXPECT_EQ(cube.world_extent(), (Vec3{1, 1, 1}));
  // The paper's Plume: 512x512x2048 -> longest axis normalized to 1.
  const Volume plume = Volume::procedural("p", {512, 512, 2048}, ramp);
  EXPECT_FLOAT_EQ(plume.world_extent().z, 1.0f);
  EXPECT_FLOAT_EQ(plume.world_extent().x, 0.25f);
  EXPECT_FLOAT_EQ(plume.world_extent().y, 0.25f);
  EXPECT_EQ(plume.world_box().lo, (Vec3{0, 0, 0}));
}

TEST(Volume, BytesAndVoxelCount) {
  const Volume v = Volume::procedural("v", {128, 64, 32}, ramp);
  EXPECT_EQ(v.voxel_count(), 128LL * 64 * 32);
  EXPECT_EQ(v.bytes(), 128ULL * 64 * 32 * 4);
}

TEST(Volume, RejectsBadConstruction) {
  EXPECT_THROW(Volume::procedural("bad", {0, 4, 4}, ramp), CheckError);
  EXPECT_THROW(Volume("null", {4, 4, 4}, nullptr), CheckError);
}

TEST(Volume, VoxelClampedAtEdges) {
  const Volume v = Volume::procedural("v", {4, 4, 4}, ramp);
  EXPECT_EQ(v.voxel_clamped({-5, 0, 0}), ramp({0, 0, 0}));
  EXPECT_EQ(v.voxel_clamped({9, 9, 9}), ramp({3, 3, 3}));
  EXPECT_EQ(v.voxel_clamped({2, -1, 5}), ramp({2, 0, 3}));
}

TEST(Volume, MaterializeExactRegion) {
  const Volume v = Volume::procedural("v", {8, 8, 8}, ramp);
  Int3 stored;
  const auto voxels = v.materialize({2, 3, 4}, {3, 2, 2}, 1, &stored);
  EXPECT_EQ(stored, (Int3{3, 2, 2}));
  ASSERT_EQ(voxels.size(), 12u);
  // x-fastest ordering.
  EXPECT_EQ(voxels[0], ramp({2, 3, 4}));
  EXPECT_EQ(voxels[1], ramp({3, 3, 4}));
  EXPECT_EQ(voxels[3], ramp({2, 4, 4}));
  EXPECT_EQ(voxels[6], ramp({2, 3, 5}));
}

TEST(Volume, MaterializeClampsOutsideRegions) {
  const Volume v = Volume::procedural("v", {4, 4, 4}, ramp);
  // Region extends one voxel past every face (like a ghost shell).
  const auto voxels = v.materialize({-1, -1, -1}, {6, 6, 6});
  EXPECT_EQ(voxels.size(), 216u);
  EXPECT_EQ(voxels.front(), ramp({0, 0, 0}));  // clamped corner
  EXPECT_EQ(voxels.back(), ramp({3, 3, 3}));
}

TEST(Volume, MaterializeDecimatedGrid) {
  const Volume v = Volume::procedural("v", {16, 16, 16}, ramp);
  Int3 stored;
  const auto voxels = v.materialize({0, 0, 0}, {16, 16, 16}, 4, &stored);
  EXPECT_EQ(stored, (Int3{4, 4, 4}));
  EXPECT_EQ(voxels.size(), 64u);
  // Stored voxel (1,0,0) is logical voxel (4,0,0).
  EXPECT_EQ(voxels[1], ramp({4, 0, 0}));
}

TEST(Volume, MaterializeDecimationKeepsMinimumTwoPoints) {
  const Volume v = Volume::procedural("v", {8, 8, 8}, ramp);
  Int3 stored;
  (void)v.materialize({0, 0, 0}, {8, 8, 8}, 100, &stored);
  EXPECT_EQ(stored, (Int3{2, 2, 2}));
}

TEST(Volume, MaterializedFactoryStoresExactField) {
  const Volume v = Volume::materialized("m", {6, 5, 4}, ramp);
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 6; ++x)
        EXPECT_EQ(v.voxel_clamped({x, y, z}), ramp({x, y, z}));
}

TEST(ArraySource, ValidatesSize) {
  std::vector<float> wrong(10);
  EXPECT_THROW(ArraySource(Int3{4, 4, 4}, std::move(wrong)), CheckError);
}

TEST(ProceduralSource, RequiresField) {
  EXPECT_THROW(ProceduralSource(nullptr), CheckError);
}

}  // namespace
}  // namespace vrmr::volren
