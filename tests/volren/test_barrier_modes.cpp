// Barrier-mode tests: mr::BarrierMode::PerReducer (dataflow readiness,
// sort->reduce chaining) against Global (the paper's frame-wide
// barriers). The modes must agree on every pixel and every dataflow
// counter; PerReducer may only move the schedule — and must never make
// the first tile LATER.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/frame_plan.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

struct Scene {
  std::string dataset;
  Int3 dims;
  int gpus = 0;
  int target_bricks = 0;  // 0 = bricks == GPUs
  mr::PartitionStrategy partition = mr::PartitionStrategy::Striped;
};

std::vector<Scene> seed_scenes() {
  return {
      {"skull", {24, 24, 24}, 4, 0, mr::PartitionStrategy::Striped},
      {"supernova", {32, 32, 32}, 8, 16, mr::PartitionStrategy::Striped},
      {"skull", {16, 16, 16}, 2, 4, mr::PartitionStrategy::PixelRoundRobin},
      {"supernova", {24, 24, 24}, 4, 8, mr::PartitionStrategy::Tiled},
  };
}

RenderOptions options_for(const Scene& scene) {
  RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  options.partition = scene.partition;
  if (scene.target_bricks > 0) options.target_bricks = scene.target_bricks;
  return options;
}

struct ModeRun {
  RenderResult result;
  std::vector<double> tile_finish_s;   // per reducer, absolute
  std::vector<double> ready_s;         // per reducer, absolute
  std::vector<int> ready_order;        // reducer indices, firing order
  double first_tile_s = 0.0;
};

ModeRun run_scene(const Scene& scene, mr::BarrierMode mode) {
  const Volume volume = datasets::by_name(scene.dataset, scene.dims);
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterConfig::with_total_gpus(scene.gpus));
  RenderOptions options = options_for(scene);
  options.barrier_mode = mode;
  const BrickLayout layout = choose_layout(volume, options, scene.gpus);
  auto frame = plan_frame(cluster, volume, options, mr::StagingHook{}, layout);

  ModeRun run;
  frame->plan().on_reducer_ready(
      [&](int r) { run.ready_order.push_back(r); });
  frame->plan().run_to_completion();

  run.first_tile_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < frame->num_tiles(); ++r) {
    run.tile_finish_s.push_back(frame->plan().tile_finish_s(r));
    run.ready_s.push_back(frame->plan().reducer_ready_s(r));
    run.first_tile_s = std::min(run.first_tile_s, frame->plan().tile_finish_s(r));
  }
  run.result = frame->finish();
  return run;
}

void expect_totals_equal(const mr::JobStats& a, const mr::JobStats& b,
                         const std::string& label) {
  EXPECT_EQ(a.fragments, b.fragments) << label;
  EXPECT_EQ(a.placeholders, b.placeholders) << label;
  EXPECT_EQ(a.total_samples, b.total_samples) << label;
  EXPECT_EQ(a.bytes_h2d, b.bytes_h2d) << label;
  EXPECT_EQ(a.bytes_d2h, b.bytes_d2h) << label;
  EXPECT_EQ(a.bytes_net, b.bytes_net) << label;
  EXPECT_EQ(a.bytes_net_inter, b.bytes_net_inter) << label;
  EXPECT_EQ(a.net_messages, b.net_messages) << label;
  EXPECT_EQ(a.num_chunks, b.num_chunks) << label;
  // Busy-time integrals are analytic sums over the same operations;
  // the schedules accumulate them in different orders, so equality
  // holds to fp-summation-order precision, not to the bit.
  const auto near = [&](double x, double y) {
    EXPECT_NEAR(x, y, 1e-12 * std::max(1.0, std::max(x, y))) << label;
  };
  near(a.gpu_busy_s, b.gpu_busy_s);
  near(a.cpu_busy_s, b.cpu_busy_s);
  near(a.pcie_busy_s, b.pcie_busy_s);
  near(a.nic_busy_s, b.nic_busy_s);
  ASSERT_EQ(a.per_reducer.size(), b.per_reducer.size()) << label;
  for (std::size_t r = 0; r < a.per_reducer.size(); ++r) {
    EXPECT_EQ(a.per_reducer[r].pairs_in, b.per_reducer[r].pairs_in) << label;
    EXPECT_EQ(a.per_reducer[r].groups, b.per_reducer[r].groups) << label;
    EXPECT_EQ(a.per_reducer[r].sorted_on_gpu, b.per_reducer[r].sorted_on_gpu)
        << label;
  }
}

TEST(BarrierModes, PixelsAndStatsTotalsIdenticalOnEverySeedScene) {
  for (const Scene& scene : seed_scenes()) {
    const std::string label = scene.dataset + " " + std::to_string(scene.dims.x) +
                              "^3 g=" + std::to_string(scene.gpus);
    const ModeRun global = run_scene(scene, mr::BarrierMode::Global);
    const ModeRun chained = run_scene(scene, mr::BarrierMode::PerReducer);
    const ImageDiff diff = compare_images(global.result.image, chained.result.image);
    EXPECT_EQ(diff.max_abs, 0.0) << label;
    expect_totals_equal(global.result.stats, chained.result.stats, label);
  }
}

TEST(BarrierModes, PerReducerFirstTileNeverLaterThanGlobal) {
  for (const Scene& scene : seed_scenes()) {
    const std::string label = scene.dataset + " " + std::to_string(scene.dims.x) +
                              "^3 g=" + std::to_string(scene.gpus);
    const ModeRun global = run_scene(scene, mr::BarrierMode::Global);
    const ModeRun chained = run_scene(scene, mr::BarrierMode::PerReducer);
    EXPECT_LE(chained.first_tile_s, global.first_tile_s) << label;
    // And no mode finishes a frame before it streams its last tile:
    // the last tile IS the frame finish (fresh engine, so absolute
    // tile times equal plan-relative runtime).
    EXPECT_DOUBLE_EQ(*std::max_element(chained.tile_finish_s.begin(),
                                       chained.tile_finish_s.end()),
                     chained.result.stats.runtime_s)
        << label;
  }
}

TEST(BarrierModes, ReadinessFiresOncePerReducerInInboxCompletionOrder) {
  // Striped partitioning skews reducer loads, so inboxes complete at
  // genuinely different times; readiness must fire exactly once per
  // reducer, at nondecreasing engine times, in that completion order.
  const Scene scene{"supernova", {32, 32, 32}, 8, 16,
                    mr::PartitionStrategy::Striped};
  const ModeRun chained = run_scene(scene, mr::BarrierMode::PerReducer);

  ASSERT_EQ(chained.ready_order.size(), chained.ready_s.size());
  std::vector<int> seen(chained.ready_s.size(), 0);
  double last_ready = -1.0;
  for (const int r : chained.ready_order) {
    seen[static_cast<std::size_t>(r)] += 1;
    EXPECT_GE(chained.ready_s[static_cast<std::size_t>(r)], last_ready)
        << "reducer " << r << " became ready out of order";
    last_ready = chained.ready_s[static_cast<std::size_t>(r)];
  }
  for (std::size_t r = 0; r < seen.size(); ++r) {
    EXPECT_EQ(seen[r], 1) << "reducer " << r;
    // A reducer's sort cannot have started before its inbox completed:
    // its tile strictly follows its readiness.
    EXPECT_GE(chained.tile_finish_s[r], chained.ready_s[r]);
  }
  // The dissolved barrier is visible: at least one reducer became
  // ready strictly before the last one (under Global they all fire at
  // the single routing-barrier event).
  const double first_ready =
      *std::min_element(chained.ready_s.begin(), chained.ready_s.end());
  const double last_ready_s =
      *std::max_element(chained.ready_s.begin(), chained.ready_s.end());
  EXPECT_LT(first_ready, last_ready_s);

  // Global mode: every reducer becomes ready at the same event.
  const ModeRun global = run_scene(scene, mr::BarrierMode::Global);
  ASSERT_EQ(global.ready_order.size(), global.ready_s.size());
  for (std::size_t r = 1; r < global.ready_s.size(); ++r) {
    EXPECT_EQ(global.ready_s[r], global.ready_s[0]);
  }
  // And the per-reducer schedule's earliest readiness strictly beats
  // the global barrier on this skewed scene.
  EXPECT_LT(first_ready, global.ready_s[0]);
}

TEST(BarrierModes, ZeroFragmentFrameCascadesSafelyInBothModes) {
  // A camera that misses the volume makes every mapper emit only
  // placeholders: every reducer's inbox is empty, so the moment
  // routing resolves the whole sort+reduce chain of every reducer
  // cascades synchronously. Stage attribution must survive that
  // cascade (t_routed/t_sorted stamped before it runs), and the frame
  // must finish cleanly with background-only pixels.
  const Volume volume = datasets::skull({16, 16, 16});
  for (const mr::BarrierMode mode :
       {mr::BarrierMode::Global, mr::BarrierMode::PerReducer}) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
    RenderOptions options;
    options.image_width = 32;
    options.image_height = 32;
    options.partition = mr::PartitionStrategy::Striped;
    options.barrier_mode = mode;
    options.distance = 60.0f;    // volume subtends well under one pixel
    options.elevation = 1.2f;    // and is pushed off-axis
    const BrickLayout layout = choose_layout(volume, options, 4);
    auto frame = plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
    const mr::JobStats stats = frame->plan().run_to_completion();
    ASSERT_TRUE(frame->plan().finished()) << to_string(mode);
    ASSERT_EQ(stats.fragments, 0u) << "scene not degenerate; retune camera";
    EXPECT_GT(stats.placeholders, 0u);
    // Phase stamps ordered and attribution non-negative even though
    // the sort/reduce phases were synchronous cascades.
    EXPECT_GT(stats.t_routed, 0.0) << to_string(mode);
    EXPECT_GE(stats.t_sorted, stats.t_routed) << to_string(mode);
    EXPECT_GE(stats.runtime_s, stats.t_sorted) << to_string(mode);
    EXPECT_GE(stats.stage.sort_s, 0.0) << to_string(mode);
    EXPECT_GE(stats.stage.reduce_s, 0.0) << to_string(mode);
    EXPECT_GE(stats.stage.partition_io_s, 0.0) << to_string(mode);
    const RenderResult result = frame->finish();
    EXPECT_EQ(result.stats.fragments, 0u);
  }
}

TEST(BarrierModes, ManualDriverChainsSortIntoReducePerReducer) {
  // Drive a PerReducer plan by hand (no eager barriers, no greedy
  // driver): readiness gates the sort, the sort's completion gates
  // that reducer's reduce — and nothing waits for the other reducers.
  const Volume volume = datasets::supernova({32, 32, 32});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
  RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  options.partition = mr::PartitionStrategy::Striped;
  options.target_bricks = 8;
  options.barrier_mode = mr::BarrierMode::PerReducer;
  const BrickLayout layout = choose_layout(volume, options, 4);
  auto frame = plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
  auto& plan = frame->plan();

  int sorts_issued = 0, reduces_issued = 0;
  plan.on_lane_free([&](int gpu) {
    if (!plan.lane_busy(gpu) && plan.pending_map_quanta(gpu) > 0) {
      plan.issue_map_quantum(gpu);
    }
  });
  plan.on_reducer_ready([&](int r) {
    EXPECT_TRUE(plan.sort_pending(r));
    EXPECT_FALSE(plan.reduce_pending(r)) << "reduce issuable before its sort";
    plan.issue_sort_quantum(r);
    ++sorts_issued;
  });
  plan.on_sort_done([&](int r) {
    // Per-reducer chaining: THIS reducer's reduce is issuable right
    // now, whatever the other sorts are doing.
    ASSERT_TRUE(plan.reduce_pending(r));
    plan.issue_reduce_quantum(r);
    ++reduces_issued;
  });
  plan.start();
  for (int g = 0; g < 4; ++g) {
    if (plan.pending_map_quanta(g) > 0) plan.issue_map_quantum(g);
  }
  engine.run();

  ASSERT_TRUE(plan.finished());
  EXPECT_EQ(sorts_issued, 4);
  EXPECT_EQ(reduces_issued, 4);

  // The manually chained schedule produces the reference pixels.
  RenderOptions reference = options;
  reference.barrier_mode = mr::BarrierMode::Global;
  sim::Engine ref_engine;
  cluster::Cluster ref_cluster(ref_engine,
                               cluster::ClusterConfig::with_total_gpus(4));
  const RenderResult expected =
      render_mapreduce(ref_cluster, volume, reference);
  const ImageDiff diff = compare_images(frame->finish().image, expected.image);
  EXPECT_EQ(diff.max_abs, 0.0);
}

}  // namespace
}  // namespace vrmr::volren
