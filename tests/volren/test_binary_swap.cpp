// Binary-swap compositor (the §6 ablation baseline): image correctness
// against the reference renderer and against the MapReduce direct-send
// path, plus the structural properties of the exchange rounds.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "volren/binary_swap.hpp"
#include "volren/datasets.hpp"
#include "volren/reference.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

RenderOptions exact_options() {
  RenderOptions opt;
  opt.image_width = 80;
  opt.image_height = 64;
  opt.cast.ert_threshold = 2.0f;  // exact compositing
  opt.transfer = TransferFunction::bone();
  return opt;
}

class BinarySwapGpuSweep : public testing::TestWithParam<int> {};

TEST_P(BinarySwapGpuSweep, MatchesReferenceImage) {
  const int gpus = GetParam();
  const Volume volume = datasets::skull({48, 48, 48});
  const RenderOptions opt = exact_options();

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  const BinarySwapResult swap = render_binary_swap(cluster, volume, opt);

  const ReferenceResult reference =
      render_reference(volume, make_frame(volume, opt), opt.background);
  const ImageDiff diff = compare_images(swap.image, reference.image);
  EXPECT_LT(diff.max_abs, 1e-4) << "gpus=" << gpus;
  EXPECT_EQ(swap.rounds, gpus > 1 ? static_cast<int>(std::log2(gpus)) : 0);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BinarySwapGpuSweep, testing::Values(1, 2, 4, 8, 16));

TEST(BinarySwap, MatchesDirectSendImage) {
  const Volume volume = datasets::supernova({40, 40, 40});
  const RenderOptions opt = exact_options();

  sim::Engine e1;
  cluster::Cluster c1(e1, cluster::ClusterConfig::with_total_gpus(8));
  const BinarySwapResult swap = render_binary_swap(c1, volume, opt);

  sim::Engine e2;
  cluster::Cluster c2(e2, cluster::ClusterConfig::with_total_gpus(8));
  const RenderResult direct = render_mapreduce(c2, volume, opt);

  const ImageDiff diff = compare_images(swap.image, direct.image);
  EXPECT_LT(diff.max_abs, 1e-4);
}

TEST(BinarySwap, RejectsNonPowerOfTwoGpuCounts) {
  const Volume volume = datasets::skull({32, 32, 32});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(6));
  EXPECT_THROW((void)render_binary_swap(cluster, volume, exact_options()), CheckError);
}

TEST(BinarySwap, ExchangeBytesFollowClassicFormula) {
  // Each round, every GPU ships half of its current region; with G GPUs
  // and P pixels the total is G * P * 16 * (1/2 + 1/4 + ...) bytes.
  const Volume volume = datasets::skull({32, 32, 32});
  const RenderOptions opt = exact_options();
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
  const BinarySwapResult swap = render_binary_swap(cluster, volume, opt);
  const std::uint64_t pixels = 80 * 64;
  const std::uint64_t expected =
      4ULL * pixels * sizeof(Rgba) / 2 + 4ULL * pixels * sizeof(Rgba) / 4;
  EXPECT_EQ(swap.bytes_net, expected);
}

TEST(BinarySwap, TimingPhasesAreAccounted) {
  const Volume volume = datasets::skull({32, 32, 32});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(8));
  const BinarySwapResult swap = render_binary_swap(cluster, volume, exact_options());
  EXPECT_GT(swap.map_s, 0.0);
  EXPECT_GT(swap.swap_s, 0.0);
  EXPECT_NEAR(swap.map_s + swap.swap_s, swap.runtime_s, 1e-9);
  EXPECT_GT(swap.fragments, 0u);
  EXPECT_GT(swap.total_samples, 0u);
  EXPECT_NEAR(swap.fps() * swap.runtime_s, 1.0, 1e-9);
}

TEST(BinarySwap, SingleGpuHasNoExchange) {
  const Volume volume = datasets::skull({32, 32, 32});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(1));
  const BinarySwapResult swap = render_binary_swap(cluster, volume, exact_options());
  EXPECT_EQ(swap.rounds, 0);
  EXPECT_EQ(swap.bytes_net, 0u);
  EXPECT_EQ(swap.swap_s, 0.0);
}

TEST(BinarySwap, ErtStaysWithinBoundOfReference) {
  const Volume volume = datasets::skull({48, 48, 48});
  RenderOptions opt = exact_options();
  opt.cast.ert_threshold = 0.98f;
  opt.transfer = TransferFunction::grayscale_ramp(0.95f);
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
  const BinarySwapResult swap = render_binary_swap(cluster, volume, opt);
  const ReferenceResult reference =
      render_reference(volume, make_frame(volume, opt), opt.background);
  EXPECT_LT(compare_images(swap.image, reference.image).max_abs, 3.0 * 0.02 + 1e-4);
}

}  // namespace
}  // namespace vrmr::volren
