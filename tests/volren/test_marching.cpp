// Properties of the shared ray-marching loop: segment-split invariance
// (the basis of gap/overlap-free bricking), decimation charging, and
// early-ray-termination behaviour.

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "volren/marching.hpp"

namespace vrmr::volren {
namespace {

// Simple analytic scene: scalar falls off with x; transfer maps scalar
// to a warm color with alpha = scalar * 0.4.
float scene_sample(Vec3 p) { return clampf(1.0f - p.x, 0.0f, 1.0f); }
Vec4 scene_transfer(float s) { return {s, s * 0.5f, 0.1f, s * 0.4f}; }

MarchResult march(const Ray& ray, float t0, float t1, float anchor, float dt,
                  int decimation = 1, float ert = 2.0f) {
  return march_ray(ray, anchor, t0, t1, dt, decimation, static_cast<float>(decimation),
                   ert, scene_sample, scene_transfer);
}

TEST(MarchRay, EmptySegmentProducesNothing) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  const MarchResult r = march(ray, 1.0f, 1.0f, 0.0f, 0.01f);
  EXPECT_EQ(r.samples, 0u);
  EXPECT_EQ(r.color.a, 0.0f);
  const MarchResult rev = march(ray, 1.0f, 0.5f, 0.0f, 0.01f);
  EXPECT_EQ(rev.samples, 0u);
}

TEST(MarchRay, SampleCountMatchesSegmentLength) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  // Segment [0, 1) with dt = 0.1: samples at 0.05, 0.15, ..., 0.95.
  const MarchResult r = march(ray, 0.0f, 1.0f, 0.0f, 0.1f);
  EXPECT_EQ(r.samples, 10u);
}

// The bricking property: splitting [t0, t1) at any interior point and
// compositing the two halves front-to-back must reproduce the unsplit
// march — same sample count exactly, same color to float tolerance.
TEST(MarchRay, SplitInvariance) {
  const Ray ray{{0, 0.3f, 0.2f}, normalize(Vec3{1, 0.2f, -0.1f})};
  const float dt = 0.013f;
  const float t0 = 0.17f, t1 = 1.43f;
  const MarchResult whole = march(ray, t0, t1, t0, dt);

  Pcg32 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const float split = t0 + (t1 - t0) * rng.next_float();
    const MarchResult a = march(ray, t0, split, t0, dt);
    const MarchResult b = march(ray, split, t1, t0, dt);
    EXPECT_EQ(a.samples + b.samples, whole.samples) << "split at " << split;
    const Rgba merged = composite_over(a.color, b.color);
    EXPECT_NEAR(merged.r, whole.color.r, 1e-5f);
    EXPECT_NEAR(merged.g, whole.color.g, 1e-5f);
    EXPECT_NEAR(merged.b, whole.color.b, 1e-5f);
    EXPECT_NEAR(merged.a, whole.color.a, 1e-5f);
  }
}

// Splitting at an exact sample position must not duplicate or drop the
// boundary sample (half-open ownership).
TEST(MarchRay, SplitAtExactSamplePosition) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  const float dt = 0.1f;
  const float t0 = 0.0f, t1 = 1.0f;
  const MarchResult whole = march(ray, t0, t1, t0, dt);
  for (int k = 1; k < 10; ++k) {
    const float split = (static_cast<float>(k) + 0.5f) * dt;  // exactly on sample k
    const MarchResult a = march(ray, t0, split, t0, dt);
    const MarchResult b = march(ray, split, t1, t0, dt);
    EXPECT_EQ(a.samples + b.samples, whole.samples) << "k=" << k;
    EXPECT_EQ(a.samples, static_cast<std::uint64_t>(k));  // sample k goes to b
  }
}

TEST(MarchRay, ThreeWaySplitInvariance) {
  const Ray ray{{0, 0, 0}, normalize(Vec3{0.8f, 0.6f, 0})};
  const float dt = 0.007f;
  const float t0 = 0.05f, t1 = 0.95f;
  const MarchResult whole = march(ray, t0, t1, t0, dt);
  const float s1 = 0.3f, s2 = 0.61f;
  const MarchResult a = march(ray, t0, s1, t0, dt);
  const MarchResult b = march(ray, s1, s2, t0, dt);
  const MarchResult c = march(ray, s2, t1, t0, dt);
  EXPECT_EQ(a.samples + b.samples + c.samples, whole.samples);
  const Rgba merged = composite_over(composite_over(a.color, b.color), c.color);
  EXPECT_NEAR(merged.a, whole.color.a, 1e-5f);
}

TEST(MarchRay, DecimationChargesLogicalSamples) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  const float dt = 0.01f;
  const MarchResult exact = march(ray, 0.0f, 1.0f, 0.0f, dt, 1);
  const MarchResult dec4 = march(ray, 0.0f, 1.0f, 0.0f, dt, 4);
  // Charged samples stay ~equal (logical steps), functional loop ran 4x fewer.
  EXPECT_NEAR(static_cast<double>(dec4.samples), static_cast<double>(exact.samples),
              4.0);
  // And the composited color approximates the exact one.
  EXPECT_NEAR(dec4.color.a, exact.color.a, 0.05f);
}

TEST(MarchRay, EarlyRayTerminationStopsSampling) {
  // Opaque medium: alpha 0.4 per step => ERT at 0.95 fires within ~6 steps.
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  const MarchResult full = march(ray, 0.0f, 1.0f, 0.0f, 0.01f, 1, /*ert=*/2.0f);
  const MarchResult ert = march(ray, 0.0f, 1.0f, 0.0f, 0.01f, 1, /*ert=*/0.95f);
  EXPECT_TRUE(ert.terminated_early);
  EXPECT_FALSE(full.terminated_early);
  EXPECT_LT(ert.samples, full.samples);
  EXPECT_GE(ert.color.a, 0.95f);
}

TEST(MarchRay, AnchorOffsetShiftsGrid) {
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  // Same segment, different anchors: different sample grids, both
  // covering the segment with the right count (within one).
  const MarchResult a = march(ray, 0.5f, 1.5f, 0.0f, 0.1f);
  const MarchResult b = march(ray, 0.5f, 1.5f, 0.5f, 0.1f);
  EXPECT_NEAR(static_cast<double>(a.samples), static_cast<double>(b.samples), 1.0);
}

}  // namespace
}  // namespace vrmr::volren
