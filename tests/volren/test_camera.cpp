#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "volren/camera.hpp"

namespace vrmr::volren {
namespace {

Camera test_camera(int w = 128, int h = 96) {
  return Camera(Vec3{2, 1.5f, 2}, Vec3{0.5f, 0.5f, 0.5f}, Vec3{0, 1, 0}, 0.8f, w, h);
}

TEST(Camera, RaysOriginateAtEye) {
  const Camera cam = test_camera();
  const Ray r = cam.pixel_ray(10, 20);
  EXPECT_EQ(r.origin, (Vec3{2, 1.5f, 2}));
  EXPECT_NEAR(length(r.dir), 1.0f, 1e-5f);
}

TEST(Camera, CenterPixelLooksAtTarget) {
  const Camera cam = test_camera(101, 101);  // odd => exact center pixel
  const Ray r = cam.pixel_ray(50, 50);
  const Vec3 to_target = normalize(Vec3{0.5f, 0.5f, 0.5f} - cam.eye());
  EXPECT_NEAR(dot(r.dir, to_target), 1.0f, 1e-3f);
}

TEST(Camera, ProjectInvertsPixelRay) {
  const Camera cam = test_camera();
  Pcg32 rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const int px = static_cast<int>(rng.next_below(128));
    const int py = static_cast<int>(rng.next_below(96));
    const Ray r = cam.pixel_ray(px, py);
    const Vec3 world = r.at(rng.uniform(0.5f, 5.0f));
    Vec3 pd;
    ASSERT_TRUE(cam.project(world, &pd));
    // Projected position lands back inside the pixel (center +- 0.5).
    EXPECT_NEAR(pd.x, static_cast<float>(px) + 0.5f, 0.05f);
    EXPECT_NEAR(pd.y, static_cast<float>(py) + 0.5f, 0.05f);
    EXPECT_GT(pd.z, 0.0f);
  }
}

TEST(Camera, ProjectRejectsPointsBehindEye) {
  const Camera cam = test_camera();
  const Vec3 behind = cam.eye() + (cam.eye() - Vec3{0.5f, 0.5f, 0.5f});
  EXPECT_FALSE(cam.project(behind, nullptr));
}

TEST(Camera, ProjectBoxCoversContainedPointProjections) {
  const Camera cam = test_camera();
  const Aabb box({0.2f, 0.3f, 0.1f}, {0.8f, 0.6f, 0.9f});
  const PixelRect rect = cam.project_box(box);
  ASSERT_FALSE(rect.empty());
  Pcg32 rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    const Vec3 p{rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y),
                 rng.uniform(box.lo.z, box.hi.z)};
    Vec3 pd;
    ASSERT_TRUE(cam.project(p, &pd));
    if (pd.x < 0 || pd.x >= 128 || pd.y < 0 || pd.y >= 96) continue;  // off-screen
    EXPECT_GE(pd.x, static_cast<float>(rect.x0) - 1.0f);
    EXPECT_LE(pd.x, static_cast<float>(rect.x1) + 1.0f);
    EXPECT_GE(pd.y, static_cast<float>(rect.y0) - 1.0f);
    EXPECT_LE(pd.y, static_cast<float>(rect.y1) + 1.0f);
  }
}

TEST(Camera, ProjectBoxClipsToImage) {
  const Camera cam = test_camera();
  const PixelRect rect = cam.project_box(Aabb({-10, -10, -10}, {10, 10, 10}));
  EXPECT_GE(rect.x0, 0);
  EXPECT_GE(rect.y0, 0);
  EXPECT_LE(rect.x1, 128);
  EXPECT_LE(rect.y1, 96);
}

TEST(Camera, ProjectBoxBehindCameraIsEmptyOrFull) {
  const Camera cam = test_camera();
  // A box fully behind the eye, opposite the view direction.
  const Vec3 away = cam.eye() + (cam.eye() - Vec3{0.5f, 0.5f, 0.5f});
  const PixelRect rect =
      cam.project_box(Aabb(away - Vec3{0.1f, 0.1f, 0.1f}, away + Vec3{0.1f, 0.1f, 0.1f}));
  // Conservative fallback: straddling/behind boxes may return the full
  // image, never a partial wrong rect.
  EXPECT_TRUE(rect.empty() || (rect.x0 == 0 && rect.y0 == 0 && rect.x1 == 128 &&
                               rect.y1 == 96));
}

TEST(Camera, OrbitKeepsTargetCentered) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  for (float az : {0.0f, 1.0f, 2.5f, 4.0f}) {
    const Camera cam = Camera::orbit(box, az, 0.4f, 2.0f, 0.7f, 64, 64);
    Vec3 pd;
    ASSERT_TRUE(cam.project(box.center(), &pd));
    EXPECT_NEAR(pd.x, 32.0f, 1.0f) << "azimuth " << az;
    EXPECT_NEAR(pd.y, 32.0f, 1.0f) << "azimuth " << az;
  }
}

TEST(Camera, OrbitDistanceScalesWithDiagonal) {
  const Aabb small({0, 0, 0}, {1, 1, 1});
  const Aabb large({0, 0, 0}, {10, 10, 10});
  const Camera a = Camera::orbit(small, 0.5f, 0.3f, 2.0f, 0.7f, 64, 64);
  const Camera b = Camera::orbit(large, 0.5f, 0.3f, 2.0f, 0.7f, 64, 64);
  EXPECT_NEAR(length(b.eye() - large.center()) / length(a.eye() - small.center()), 10.0f,
              0.1f);
}

TEST(PixelRect, Geometry) {
  const PixelRect r{2, 3, 10, 7};
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.pixels(), 32);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((PixelRect{5, 5, 5, 9}).empty());
}

TEST(Camera, RejectsBadConstruction) {
  EXPECT_THROW(Camera(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 0.7f, 0, 64),
               CheckError);
  EXPECT_THROW(Camera(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, -0.5f, 64, 64),
               CheckError);
}

}  // namespace
}  // namespace vrmr::volren
