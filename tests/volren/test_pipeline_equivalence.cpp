// The central correctness property of the reproduction (DESIGN.md §6):
// the bricked, partitioned, sorted, reduced MapReduce render must agree
// with the single-pass reference ray caster for every brick
// decomposition, GPU count and partition strategy.
//
// With early ray termination disabled the two paths take *identical*
// samples and differ only by floating-point re-association in the
// front-to-back compositing chain, so the tolerance is tight (1e-4).
// With ERT enabled the per-brick termination can admit a few extra
// samples behind the global termination point; the residual is bounded
// by the transparency budget (1 - threshold), so the tolerance loosens
// accordingly.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/reference.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

Volume make_volume(const std::string& name) {
  if (name == "skull") return datasets::skull({48, 48, 48});
  if (name == "supernova") return datasets::supernova({40, 40, 40});
  if (name == "plume") return datasets::plume({24, 24, 96});
  ADD_FAILURE() << "unknown volume " << name;
  return datasets::skull({8, 8, 8});
}

RenderOptions base_options() {
  RenderOptions opt;
  opt.image_width = 96;
  opt.image_height = 80;  // non-square to catch x/y mixups
  opt.transfer = TransferFunction::bone();
  opt.cast.ert_threshold = 2.0f;  // exact mode: ERT disabled
  opt.azimuth = 0.7f;
  opt.elevation = 0.35f;
  return opt;
}

struct Case {
  std::string volume;
  int gpus;
  int brick_size;
  mr::PartitionStrategy strategy;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  const char* strategy = c.strategy == mr::PartitionStrategy::PixelRoundRobin ? "rr"
                         : c.strategy == mr::PartitionStrategy::Striped       ? "striped"
                                                                              : "tiled";
  return c.volume + "_g" + std::to_string(c.gpus) + "_b" + std::to_string(c.brick_size) +
         "_" + strategy + std::to_string(info.index);
}

class PipelineEquivalence : public testing::TestWithParam<Case> {};

TEST_P(PipelineEquivalence, MatchesSinglePassReference) {
  const Case& c = GetParam();
  const Volume volume = make_volume(c.volume);

  RenderOptions opt = base_options();
  opt.brick_size = c.brick_size;
  opt.partition = c.strategy;

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(c.gpus));
  const RenderResult mapreduce = render_mapreduce(cluster, volume, opt);

  const ReferenceResult reference =
      render_reference(volume, make_frame(volume, opt), opt.background);

  const ImageDiff diff = compare_images(mapreduce.image, reference.image);
  EXPECT_LT(diff.max_abs, 1e-4) << "bricks=" << mapreduce.num_bricks;
  // Exactly the same logical sample count must have been charged.
  EXPECT_EQ(mapreduce.stats.total_samples, reference.samples);
}

INSTANTIATE_TEST_SUITE_P(
    BrickAndGpuSweep, PipelineEquivalence,
    testing::Values(
        // Single brick, single GPU: pipeline == plain kernel.
        Case{"skull", 1, 64, mr::PartitionStrategy::PixelRoundRobin},
        // 2x2x2 bricks over 1/3/8 GPUs.
        Case{"skull", 1, 24, mr::PartitionStrategy::PixelRoundRobin},
        Case{"skull", 3, 24, mr::PartitionStrategy::PixelRoundRobin},
        Case{"skull", 8, 24, mr::PartitionStrategy::PixelRoundRobin},
        // 3x3x3 bricks (uneven edge bricks: 48 = 2*20 + 8).
        Case{"skull", 4, 20, mr::PartitionStrategy::PixelRoundRobin},
        // Fine 4x4x4 bricking.
        Case{"skull", 8, 12, mr::PartitionStrategy::PixelRoundRobin},
        // Alternative partition strategies must not change the image.
        Case{"skull", 5, 24, mr::PartitionStrategy::Striped},
        Case{"skull", 5, 24, mr::PartitionStrategy::Tiled},
        // Other datasets, incl. the non-cubic plume.
        Case{"supernova", 4, 20, mr::PartitionStrategy::PixelRoundRobin},
        Case{"supernova", 6, 10, mr::PartitionStrategy::Striped},
        Case{"plume", 4, 24, mr::PartitionStrategy::PixelRoundRobin},
        Case{"plume", 7, 12, mr::PartitionStrategy::Tiled}),
    case_name);

TEST(PipelineEquivalenceErt, BoundedDeviationWithEarlyRayTermination) {
  const Volume volume = make_volume("skull");
  RenderOptions opt = base_options();
  opt.brick_size = 16;
  opt.cast.ert_threshold = 0.98f;
  // A hotter transfer function so ERT actually fires.
  opt.transfer = TransferFunction::grayscale_ramp(0.95f);

  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
  const RenderResult mapreduce = render_mapreduce(cluster, volume, opt);
  const ReferenceResult reference =
      render_reference(volume, make_frame(volume, opt), opt.background);

  // Residual bounded by the remaining transparency budget at the
  // termination point.
  const ImageDiff diff = compare_images(mapreduce.image, reference.image);
  EXPECT_LT(diff.max_abs, 3.0 * (1.0 - 0.98) + 1e-4);
  // ERT must actually reduce work versus the exact render.
  RenderOptions exact = opt;
  exact.cast.ert_threshold = 2.0f;
  sim::Engine engine2;
  cluster::Cluster cluster2(engine2, cluster::ClusterConfig::with_total_gpus(4));
  const RenderResult full = render_mapreduce(cluster2, volume, exact);
  EXPECT_LT(mapreduce.stats.total_samples, full.stats.total_samples);
}

TEST(PipelineDeterminism, IdenticalRunsProduceIdenticalImagesAndTimings) {
  const Volume volume = make_volume("supernova");
  RenderOptions opt = base_options();
  opt.brick_size = 20;

  auto run = [&] {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(6));
    return render_mapreduce(cluster, volume, opt);
  };
  const RenderResult a = run();
  const RenderResult b = run();

  const ImageDiff diff = compare_images(a.image, b.image);
  EXPECT_EQ(diff.max_abs, 0.0);
  EXPECT_EQ(a.stats.runtime_s, b.stats.runtime_s);
  EXPECT_EQ(a.stats.fragments, b.stats.fragments);
  EXPECT_EQ(a.stats.total_samples, b.stats.total_samples);
  EXPECT_EQ(a.stats.bytes_net, b.stats.bytes_net);
}

}  // namespace
}  // namespace vrmr::volren
