#include <gtest/gtest.h>

#include <set>

#include "volren/bricking.hpp"

namespace vrmr::volren {
namespace {

struct LayoutCase {
  Int3 dims;
  int brick_size;
};

class BrickLayoutProperties : public testing::TestWithParam<LayoutCase> {};

// Core regions must tile the volume exactly: every voxel in exactly one
// brick's core.
TEST_P(BrickLayoutProperties, CoresTileVolumeExactly) {
  const auto& [dims, brick_size] = GetParam();
  const BrickLayout layout(dims, Vec3{1, 1, 1}, brick_size, 1);
  std::int64_t covered = 0;
  for (const BrickInfo& b : layout.bricks()) {
    covered += b.core_voxels();
    // Core within the volume.
    EXPECT_GE(b.core_origin.x, 0);
    EXPECT_LE(b.core_origin.x + b.core_dims.x, dims.x);
    EXPECT_LE(b.core_origin.y + b.core_dims.y, dims.y);
    EXPECT_LE(b.core_origin.z + b.core_dims.z, dims.z);
  }
  EXPECT_EQ(covered, dims.volume());
}

TEST_P(BrickLayoutProperties, PaddedRegionsContainCorePlusGhost) {
  const auto& [dims, brick_size] = GetParam();
  const int ghost = 1;
  const BrickLayout layout(dims, Vec3{1, 1, 1}, brick_size, ghost);
  for (const BrickInfo& b : layout.bricks()) {
    for (int axis = 0; axis < 3; ++axis) {
      // Padded covers the core.
      EXPECT_LE(b.padded_origin[axis], b.core_origin[axis]);
      EXPECT_GE(b.padded_origin[axis] + b.padded_dims[axis],
                b.core_origin[axis] + b.core_dims[axis]);
      // Ghost extends by exactly `ghost` voxels except at volume faces.
      if (b.core_origin[axis] > 0) {
        EXPECT_EQ(b.padded_origin[axis], b.core_origin[axis] - ghost);
      } else {
        EXPECT_EQ(b.padded_origin[axis], 0);
      }
      const int core_end = b.core_origin[axis] + b.core_dims[axis];
      const int padded_end = b.padded_origin[axis] + b.padded_dims[axis];
      if (core_end < dims[axis]) {
        EXPECT_EQ(padded_end, core_end + ghost);
      } else {
        EXPECT_EQ(padded_end, dims[axis]);
      }
    }
  }
}

TEST_P(BrickLayoutProperties, IdsMatchGridOrder) {
  const auto& [dims, brick_size] = GetParam();
  const BrickLayout layout(dims, Vec3{1, 1, 1}, brick_size, 1);
  for (int id = 0; id < layout.num_bricks(); ++id) {
    EXPECT_EQ(layout.brick(id).id, id);
    EXPECT_EQ(layout.brick_id(layout.brick(id).grid_pos), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BrickLayoutProperties,
                         testing::Values(LayoutCase{{32, 32, 32}, 32},   // single brick
                                         LayoutCase{{32, 32, 32}, 16},   // 2x2x2
                                         LayoutCase{{48, 48, 48}, 20},   // uneven edges
                                         LayoutCase{{33, 17, 9}, 8},     // ragged
                                         LayoutCase{{16, 16, 64}, 16},   // plume-like
                                         LayoutCase{{100, 10, 10}, 7}));

// Neighboring bricks must share world-face coordinates bit-exactly —
// the foundation of the half-open sample-ownership rule (see
// bricking.cpp).
TEST(BrickLayout, NeighborFacesAreBitIdentical) {
  const Int3 dims{48, 40, 56};
  const Vec3 extent{1.0f, 40.0f / 56.0f, 48.0f / 56.0f};  // arbitrary aspect
  const BrickLayout layout(dims, extent, 16, 1);
  const Int3 grid = layout.grid_dims();
  for (int z = 0; z < grid.z; ++z) {
    for (int y = 0; y < grid.y; ++y) {
      for (int x = 0; x + 1 < grid.x; ++x) {
        const BrickInfo& a = layout.brick(layout.brick_id({x, y, z}));
        const BrickInfo& b = layout.brick(layout.brick_id({x + 1, y, z}));
        EXPECT_EQ(a.world_box.hi.x, b.world_box.lo.x);  // bitwise
      }
    }
  }
}

TEST(BrickLayout, OuterFacesMatchVolumeBoxExactly) {
  const Int3 dims{24, 48, 36};
  const Vec3 extent{0.5f, 1.0f, 0.75f};
  const BrickLayout layout(dims, extent, 16, 1);
  Aabb bounds;
  for (const BrickInfo& b : layout.bricks()) bounds.expand(b.world_box);
  EXPECT_EQ(bounds.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(bounds.hi, extent);  // bitwise: (d/d)*e == e
}

TEST(BrickLayout, GridDimsMatchCeilDiv) {
  const BrickLayout layout(Int3{100, 50, 25}, Vec3{1, 0.5f, 0.25f}, 16, 1);
  EXPECT_EQ(layout.grid_dims(), (Int3{7, 4, 2}));
  EXPECT_EQ(layout.num_bricks(), 56);
}

TEST(BrickLayout, DeviceBytesIncludeGhost) {
  const BrickLayout layout(Int3{32, 32, 32}, Vec3{1, 1, 1}, 16, 1);
  // Interior-corner brick at grid (0,0,0): padded 17^3 (+1 ghost on the
  // high side only, clamped at the low volume faces).
  EXPECT_EQ(layout.brick(0).device_bytes(), 17ULL * 17 * 17 * 4);
  // Center brick of a 3x3x3 layout has ghost on all sides.
  const BrickLayout layout3(Int3{48, 48, 48}, Vec3{1, 1, 1}, 16, 1);
  const BrickInfo& center = layout3.brick(layout3.brick_id({1, 1, 1}));
  EXPECT_EQ(center.padded_dims, (Int3{18, 18, 18}));
}

TEST(BrickLayout, RejectsBadArguments) {
  EXPECT_THROW(BrickLayout(Int3{0, 4, 4}, Vec3{1, 1, 1}, 2, 1), CheckError);
  EXPECT_THROW(BrickLayout(Int3{4, 4, 4}, Vec3{1, 1, 1}, 1, 1), CheckError);
  EXPECT_THROW(BrickLayout(Int3{4, 4, 4}, Vec3{1, 1, 1}, 4, -1), CheckError);
}

TEST(ChooseBrickSize, HitsTargetWithinFactorOfFour) {
  // §6: configurations work best when bricks ≈ GPUs (within ~4x).
  for (int target : {1, 2, 4, 8, 16, 32}) {
    const int size = BrickLayout::choose_brick_size(Int3{256, 256, 256}, target);
    const BrickLayout layout(Int3{256, 256, 256}, Vec3{1, 1, 1}, size, 1);
    EXPECT_GE(layout.num_bricks(), target) << "target " << target;
    EXPECT_LE(layout.num_bricks(), target * 8) << "target " << target;
  }
}

TEST(ChooseBrickSize, SingleBrickForTargetOne) {
  EXPECT_EQ(BrickLayout::choose_brick_size(Int3{64, 64, 64}, 1), 64);
  // Non-cubic: single brick needs the max dimension.
  const int size = BrickLayout::choose_brick_size(Int3{32, 32, 128}, 1);
  EXPECT_EQ(size, 128);
}

}  // namespace
}  // namespace vrmr::volren
