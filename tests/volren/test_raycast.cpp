// Unit tests of the ray-cast map kernel (cast_brick / RayCastMapper):
// thread accounting, placeholder emission, screen-footprint gridding,
// sample charging, and the §3.1.1 every-thread-emits contract.

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/texture.hpp"
#include "volren/datasets.hpp"
#include "volren/raycast.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

gpusim::Device& test_device() {
  static gpusim::DeviceProps props = [] {
    gpusim::DeviceProps p;
    p.vram_bytes = 2ULL << 30;
    return p;
  }();
  static gpusim::Device dev(7, props);
  return dev;
}

struct KernelFixture {
  Volume volume = datasets::skull({48, 48, 48});
  RenderOptions options;
  FrameSetup frame;
  BrickLayout layout;
  gpusim::Texture1D transfer_tex;

  KernelFixture()
      : options([] {
          RenderOptions o;
          o.image_width = 96;
          o.image_height = 96;
          return o;
        }()),
        frame(make_frame(volume, options)),
        layout(volume.dims(), volume.world_extent(), 24, 1),
        transfer_tex(test_device(), 256) {
    transfer_tex.upload(frame.transfer.bake(256));
  }
};

TEST(CastBrick, ThreadCountMatchesPaddedGrid) {
  KernelFixture fx;
  const BrickCastOutput out =
      cast_brick(test_device(), fx.volume, fx.layout.brick(0), fx.frame, fx.transfer_tex);
  ASSERT_GT(out.threads, 0u);
  // Block-padded grid: threads are a multiple of 16x16 and cover the
  // projected rect.
  EXPECT_EQ(out.threads % 256, 0u);
  EXPECT_EQ(out.keys.size(), out.threads);
  EXPECT_EQ(out.fragments.size(), out.threads);
  const PixelRect rect = fx.frame.camera.project_box(fx.layout.brick(0).world_box);
  EXPECT_GE(static_cast<std::int64_t>(out.threads), rect.pixels());
}

TEST(CastBrick, EveryThreadHasAnEntry) {
  // §3.1.1: every thread emits a pair — fragment or placeholder. The
  // slot arrays are exactly thread-sized and every non-placeholder key
  // is a valid pixel inside the brick's rect.
  KernelFixture fx;
  const BrickInfo& brick = fx.layout.brick(fx.layout.num_bricks() / 2);
  const BrickCastOutput out =
      cast_brick(test_device(), fx.volume, brick, fx.frame, fx.transfer_tex);
  const PixelRect rect = fx.frame.camera.project_box(brick.world_box);
  std::size_t fragments = 0;
  for (std::size_t i = 0; i < out.keys.size(); ++i) {
    if (out.keys[i] == mr::kPlaceholderKey) continue;
    ++fragments;
    const int px = static_cast<int>(out.keys[i] % 96);
    const int py = static_cast<int>(out.keys[i] / 96);
    EXPECT_GE(px, rect.x0);
    EXPECT_LT(px, rect.x1);
    EXPECT_GE(py, rect.y0);
    EXPECT_LT(py, rect.y1);
    // Fragment carries this brick's id and positive depth/alpha.
    EXPECT_EQ(out.fragments[i].brick, static_cast<std::uint32_t>(brick.id));
    EXPECT_GT(out.fragments[i].a, 0.0f);
    EXPECT_GT(out.fragments[i].depth, 0.0f);
  }
  EXPECT_GT(fragments, 0u);
  EXPECT_LT(fragments, out.threads);  // padding threads stay placeholders
}

TEST(CastBrick, BrickBehindCameraProducesOnlyPlaceholders) {
  KernelFixture fx;
  // Camera looking away from the volume: the projection falls back to
  // the conservative full-image rect (a box straddling/behind the near
  // plane has an unbounded projection), but every ray misses, so the
  // kernel emits placeholders only and charges zero samples.
  fx.frame.camera = Camera(Vec3{5, 5, 5}, Vec3{10, 10, 10}, Vec3{0, 1, 0}, 0.5f, 96, 96);
  const BrickCastOutput out =
      cast_brick(test_device(), fx.volume, fx.layout.brick(0), fx.frame, fx.transfer_tex);
  EXPECT_EQ(out.samples, 0u);
  for (std::size_t i = 0; i < out.keys.size(); ++i) {
    ASSERT_EQ(out.keys[i], mr::kPlaceholderKey) << "slot " << i;
  }
}

TEST(CastBrick, FullyOffscreenBrickLaunchesNothing) {
  KernelFixture fx;
  // Camera with the volume in front of the near plane but panned far
  // off to the side: the brick projects outside the image entirely =>
  // empty rect, zero threads.
  fx.frame.camera =
      Camera(Vec3{0.5f, 0.5f, 3.0f}, Vec3{5.0f, 0.5f, 2.0f}, Vec3{0, 1, 0}, 0.4f, 96, 96);
  const BrickCastOutput out =
      cast_brick(test_device(), fx.volume, fx.layout.brick(0), fx.frame, fx.transfer_tex);
  EXPECT_EQ(out.threads, 0u);
  EXPECT_EQ(out.samples, 0u);
  EXPECT_TRUE(out.keys.empty());
}

TEST(CastBrick, SamplesScaleWithSamplingRate) {
  KernelFixture fx;
  const BrickCastOutput base =
      cast_brick(test_device(), fx.volume, fx.layout.brick(0), fx.frame, fx.transfer_tex);
  fx.frame.cast.sampling_rate = 2.0f;  // half the step size => ~2x samples
  const BrickCastOutput dense =
      cast_brick(test_device(), fx.volume, fx.layout.brick(0), fx.frame, fx.transfer_tex);
  EXPECT_GT(dense.samples, base.samples * 3 / 2);
  EXPECT_LT(dense.samples, base.samples * 5 / 2);
}

TEST(CastBrick, VramIsReleasedAfterReturn) {
  KernelFixture fx;
  const std::uint64_t before = test_device().vram_used();
  (void)cast_brick(test_device(), fx.volume, fx.layout.brick(0), fx.frame,
                   fx.transfer_tex);
  EXPECT_EQ(test_device().vram_used(), before);
}

TEST(CastBrick, AccountsLogicalBytesUnderDecimation) {
  // Decimation stores a smaller proxy grid but must still charge the
  // brick's logical VRAM footprint while staged.
  const Volume big = datasets::skull({96, 96, 96});
  RenderOptions options;
  options.image_width = 64;
  options.image_height = 64;
  options.cast.decimation = 4;
  const FrameSetup frame = make_frame(big, options);
  const BrickLayout layout(big.dims(), big.world_extent(), 96, 1);
  gpusim::DeviceProps tight;
  // Logical brick = 96^3 * 4 B ≈ 3.4 MiB; proxy = 24^3 * 4 B ≈ 55 KiB.
  tight.vram_bytes = 2 << 20;  // too small for logical, plenty for proxy
  gpusim::Device small_dev(1, tight);
  gpusim::Texture1D tf(small_dev, 256);
  tf.upload(frame.transfer.bake(256));
  EXPECT_THROW((void)cast_brick(small_dev, big, layout.brick(0), frame, tf),
               gpusim::DeviceOutOfMemory);
}

TEST(RayCastMapper, RequiresBrickChunkAndInit) {
  const Volume volume = datasets::skull({16, 16, 16});
  RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  RayCastMapper mapper(volume, make_frame(volume, options));
  const BrickLayout layout(volume.dims(), volume.world_extent(), 16, 1);
  BrickChunk chunk(volume, layout.brick(0));
  mr::KvBuffer out(sizeof(RayFragment));
  // init() not called yet.
  EXPECT_THROW((void)mapper.map(test_device(), chunk, out), CheckError);
  mapper.init(test_device());
  // Wrong value size.
  mr::KvBuffer wrong(8);
  EXPECT_THROW((void)mapper.map(test_device(), chunk, wrong), CheckError);
  // Correct use.
  const mr::MapOutcome outcome = mapper.map(test_device(), chunk, out);
  EXPECT_EQ(out.size(), outcome.threads);
}

TEST(RayCastMapper, RejectsForeignVolumeChunk) {
  const Volume a = datasets::skull({16, 16, 16});
  const Volume b = datasets::supernova({16, 16, 16});
  RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  RayCastMapper mapper(a, make_frame(a, options));
  mapper.init(test_device());
  const BrickLayout layout(b.dims(), b.world_extent(), 16, 1);
  BrickChunk chunk(b, layout.brick(0));
  mr::KvBuffer out(sizeof(RayFragment));
  EXPECT_THROW((void)mapper.map(test_device(), chunk, out), CheckError);
}

TEST(RendererProperty, SendBufferSizeNeverChangesPixels) {
  // The buffered-streaming knob is pure scheduling: any buffer size
  // must yield the identical image.
  const Volume volume = datasets::supernova({32, 32, 32});
  RenderOptions opt;
  opt.image_width = 64;
  opt.image_height = 64;
  opt.brick_size = 16;
  auto render_with_buffer = [&](std::uint64_t bytes) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
    const FrameSetup frame = make_frame(volume, opt);
    mr::JobConfig config;
    config.value_size = sizeof(RayFragment);
    config.domain.num_keys = 64 * 64;
    config.domain.image_width = 64;
    config.send_buffer_bytes = bytes;
    mr::Job job(cluster, config);
    job.set_mapper_factory([&](int, gpusim::Device&) {
      return std::make_unique<RayCastMapper>(volume, frame);
    });
    std::vector<std::vector<FinishedPixel>> pieces(4);
    job.set_reducer_factory([&](int r) {
      return std::make_unique<CompositeReducer>(opt.cast.ert_threshold, opt.background,
                                                &pieces[static_cast<size_t>(r)]);
    });
    const BrickLayout layout(volume.dims(), volume.world_extent(), 16, 1);
    for (const BrickInfo& info : layout.bricks())
      job.add_chunk(std::make_unique<BrickChunk>(volume, info));
    (void)job.run();
    return stitch_image(64, 64, opt.background, pieces);
  };
  const Image tiny = render_with_buffer(1);
  const Image huge = render_with_buffer(64 << 20);
  EXPECT_EQ(compare_images(tiny, huge).max_abs, 0.0);
}

}  // namespace
}  // namespace vrmr::volren
