// High-level render API behaviour: stats consistency, option plumbing,
// out-of-core mode, and the figures-of-merit helpers (§4.2).

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

RenderOptions small_options() {
  RenderOptions opt;
  opt.image_width = 64;
  opt.image_height = 64;
  return opt;
}

RenderResult render(int gpus, const Volume& volume, const RenderOptions& opt) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  return render_mapreduce(cluster, volume, opt);
}

TEST(Renderer, ProducesNonTrivialImageAndStats) {
  const Volume volume = datasets::skull({32, 32, 32});
  const RenderResult result = render(4, volume, small_options());
  EXPECT_EQ(result.image.width(), 64);
  EXPECT_EQ(result.image.height(), 64);
  EXPECT_GT(result.stats.runtime_s, 0.0);
  EXPECT_GT(result.stats.fragments, 0u);
  EXPECT_GT(result.stats.total_samples, 0u);
  EXPECT_EQ(result.logical_voxels, 32ull * 32 * 32);
  // Some pixel differs from the background.
  bool any = false;
  for (const Vec3& p : result.image.pixels()) {
    if (p.x > 0.01f || p.y > 0.01f || p.z > 0.01f) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(Renderer, FiguresOfMeritAreConsistent) {
  const Volume volume = datasets::supernova({32, 32, 32});
  const RenderResult result = render(2, volume, small_options());
  EXPECT_NEAR(result.fps() * result.stats.runtime_s, 1.0, 1e-9);
  EXPECT_NEAR(result.voxels_per_second() * result.stats.runtime_s,
              static_cast<double>(result.logical_voxels), 1e-3);
  EXPECT_NEAR(result.mvps(), result.voxels_per_second() / 1e6, 1e-9);
}

TEST(Renderer, AutoBrickingTargetsGpuCount) {
  const Volume volume = datasets::skull({64, 64, 64});
  for (int gpus : {1, 4, 8}) {
    const RenderResult result = render(gpus, volume, small_options());
    EXPECT_GE(result.num_bricks, gpus) << gpus;
    EXPECT_LE(result.num_bricks, gpus * 8) << gpus;
  }
}

TEST(Renderer, ExplicitBrickSizeHonored) {
  const Volume volume = datasets::skull({32, 32, 32});
  RenderOptions opt = small_options();
  opt.brick_size = 16;
  const RenderResult result = render(2, volume, opt);
  EXPECT_EQ(result.brick_size, 16);
  EXPECT_EQ(result.num_bricks, 8);
  EXPECT_EQ(result.stats.num_chunks, 8);
}

TEST(Renderer, TargetBricksOverridesGpuDefault) {
  const Volume volume = datasets::skull({64, 64, 64});
  RenderOptions opt = small_options();
  opt.target_bricks = 27;
  const RenderResult result = render(1, volume, opt);
  EXPECT_GE(result.num_bricks, 27);
}

TEST(Renderer, OutOfCoreChargesDiskAndSlowsFrame) {
  const Volume volume = datasets::skull({48, 48, 48});
  RenderOptions opt = small_options();
  opt.brick_size = 24;
  const RenderResult in_core = render(2, volume, opt);
  opt.include_disk_io = true;
  const RenderResult out_of_core = render(2, volume, opt);
  EXPECT_EQ(in_core.stats.bytes_disk, 0u);
  EXPECT_GT(out_of_core.stats.bytes_disk, 0u);
  EXPECT_GT(out_of_core.stats.runtime_s, in_core.stats.runtime_s);
  // Identical imagery either way.
  EXPECT_EQ(compare_images(in_core.image, out_of_core.image).max_abs, 0.0);
}

TEST(Renderer, ExplicitCameraIsUsed) {
  const Volume volume = datasets::skull({32, 32, 32});
  RenderOptions opt = small_options();
  opt.use_explicit_camera = true;
  opt.explicit_camera = Camera(Vec3{3, 3, 3}, volume.world_box().center(), Vec3{0, 1, 0},
                               0.6f, 64, 64);
  const RenderResult result = render(1, volume, opt);
  EXPECT_EQ(result.camera.eye(), (Vec3{3, 3, 3}));
}

TEST(Renderer, ReducePlacementGpuStillCorrect) {
  const Volume volume = datasets::supernova({32, 32, 32});
  RenderOptions cpu_opt = small_options();
  RenderOptions gpu_opt = small_options();
  gpu_opt.reduce = mr::ReducePlacement::Gpu;
  const RenderResult on_cpu = render(3, volume, cpu_opt);
  const RenderResult on_gpu = render(3, volume, gpu_opt);
  // Placement changes timing, never pixels.
  EXPECT_EQ(compare_images(on_cpu.image, on_gpu.image).max_abs, 0.0);
  EXPECT_NE(on_cpu.stats.runtime_s, on_gpu.stats.runtime_s);
}

TEST(Renderer, MapStageShrinksWithMoreGpus) {
  const Volume volume = datasets::skull({64, 64, 64});
  RenderOptions opt = small_options();
  opt.brick_size = 16;  // 64 bricks: plenty of work to spread
  const RenderResult g1 = render(1, volume, opt);
  const RenderResult g4 = render(4, volume, opt);
  const RenderResult g16 = render(16, volume, opt);
  EXPECT_GT(g1.stats.stage.map_s, g4.stats.stage.map_s);
  EXPECT_GT(g4.stats.stage.map_s, g16.stats.stage.map_s);
}

TEST(Renderer, FragmentsBoundedByRaysTimesBricks) {
  // O(X) <= fragments <= O(B*X) (§3): with the whole volume on screen,
  // fragment count is bounded by pixels x bricks.
  const Volume volume = datasets::skull({32, 32, 32});
  RenderOptions opt = small_options();
  opt.brick_size = 16;
  const RenderResult result = render(2, volume, opt);
  const std::uint64_t pixels = 64 * 64;
  EXPECT_LE(result.stats.fragments, pixels * static_cast<std::uint64_t>(result.num_bricks));
  EXPECT_GT(result.stats.fragments, 0u);
}

TEST(Renderer, MultiFrameOnSharedClusterIsStable) {
  // Turntable-style reuse of one cluster: frames must not interfere.
  const Volume volume = datasets::skull({32, 32, 32});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
  RenderOptions opt = small_options();
  const RenderResult f1 = render_mapreduce(cluster, volume, opt);
  const RenderResult f2 = render_mapreduce(cluster, volume, opt);
  EXPECT_EQ(compare_images(f1.image, f2.image).max_abs, 0.0);
  EXPECT_NEAR(f1.stats.runtime_s, f2.stats.runtime_s, 1e-9);
}

}  // namespace
}  // namespace vrmr::volren
