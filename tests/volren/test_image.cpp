#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "volren/composite_reducer.hpp"
#include "volren/image.hpp"

namespace vrmr::volren {
namespace {

namespace fs = std::filesystem;

TEST(Image, ConstructsWithFill) {
  const Image img(8, 4, Vec3{0.5f, 0.25f, 0.125f});
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.pixel_count(), 32);
  EXPECT_EQ(img.at(7, 3), (Vec3{0.5f, 0.25f, 0.125f}));
}

TEST(Image, RejectsBadDims) {
  EXPECT_THROW(Image(0, 4), CheckError);
  EXPECT_THROW(Image(4, -1), CheckError);
}

TEST(Image, IndexedAccessMatchesXy) {
  Image img(4, 4);
  img.at(1, 2) = Vec3{1, 2, 3};
  EXPECT_EQ(img.at_index(2 * 4 + 1), (Vec3{1, 2, 3}));
}

TEST(Image, WritePpmProducesValidHeaderAndSize) {
  const fs::path path = fs::temp_directory_path() / "vrmr_test_image.ppm";
  Image img(16, 8, Vec3{1, 0, 0});
  img.write_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 16);
  EXPECT_EQ(h, 8);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> payload(16 * 8 * 3);
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(payload.size()));
  // Red channel saturated, green/blue zero.
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 255);
  EXPECT_EQ(static_cast<unsigned char>(payload[1]), 0);
  fs::remove(path);
}

TEST(CompareImages, IdenticalImagesHaveZeroDiff) {
  Image a(8, 8, Vec3{0.3f, 0.3f, 0.3f});
  const ImageDiff diff = compare_images(a, a);
  EXPECT_EQ(diff.max_abs, 0.0);
  EXPECT_EQ(diff.mean_abs, 0.0);
}

TEST(CompareImages, DetectsSinglePixelChange) {
  Image a(10, 10);
  Image b(10, 10);
  b.at(3, 7) = Vec3{0.0f, 0.5f, 0.0f};
  const ImageDiff diff = compare_images(a, b);
  EXPECT_DOUBLE_EQ(diff.max_abs, 0.5);
  EXPECT_NEAR(diff.mean_abs, 0.5 / 3.0 / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(fraction_differing(a, b, 0.1), 0.01);
  EXPECT_DOUBLE_EQ(fraction_differing(a, b, 0.6), 0.0);
}

TEST(CompareImages, RejectsSizeMismatch) {
  Image a(4, 4);
  Image b(4, 5);
  EXPECT_THROW((void)compare_images(a, b), CheckError);
}

TEST(StitchImage, FillsBackgroundAndScattersPieces) {
  std::vector<std::vector<FinishedPixel>> pieces(2);
  pieces[0].push_back({0, Vec3{1, 0, 0}});
  pieces[1].push_back({5, Vec3{0, 1, 0}});
  const Image img = stitch_image(3, 2, Vec3{0.1f, 0.1f, 0.1f}, pieces);
  EXPECT_EQ(img.at_index(0), (Vec3{1, 0, 0}));
  EXPECT_EQ(img.at_index(5), (Vec3{0, 1, 0}));
  EXPECT_EQ(img.at_index(3), (Vec3{0.1f, 0.1f, 0.1f}));  // untouched => background
}

TEST(StitchImage, RejectsOutOfRangeKeys) {
  std::vector<std::vector<FinishedPixel>> pieces(1);
  pieces[0].push_back({100, Vec3{1, 1, 1}});
  EXPECT_THROW((void)stitch_image(4, 4, Vec3{}, pieces), CheckError);
}

}  // namespace
}  // namespace vrmr::volren
