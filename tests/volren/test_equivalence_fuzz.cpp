// Randomized-view property sweep for the central correctness guarantee:
// for *arbitrary* camera placements (including cameras inside the
// volume and degenerate grazing angles), random brick decompositions
// and random cluster shapes, the MapReduce render must match the
// single-pass reference and charge the identical sample count.
//
// Seeded PCG streams keep every case reproducible; a failing seed
// prints in the test name.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "volren/datasets.hpp"
#include "volren/reference.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

class EquivalenceFuzz : public testing::TestWithParam<int> {};

TEST_P(EquivalenceFuzz, RandomViewMatchesReference) {
  const int seed = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(seed), 77);

  // Random-ish small volume (keeps a single case under ~100 ms).
  const Int3 dims{24 + static_cast<int>(rng.next_below(24)),
                  24 + static_cast<int>(rng.next_below(24)),
                  24 + static_cast<int>(rng.next_below(40))};
  const char* names[] = {"skull", "supernova", "plume"};
  const Volume volume = datasets::by_name(names[rng.next_below(3)], dims);

  RenderOptions opt;
  opt.image_width = 48 + static_cast<int>(rng.next_below(48));
  opt.image_height = 48 + static_cast<int>(rng.next_below(48));
  opt.cast.ert_threshold = 2.0f;  // exact mode
  opt.transfer = rng.next_below(2) ? TransferFunction::bone() : TransferFunction::fire();
  opt.use_explicit_camera = true;
  // Anywhere from inside the volume to far outside, any direction.
  const Vec3 center = volume.world_box().center();
  const Vec3 eye{center.x + rng.uniform(-2.5f, 2.5f), center.y + rng.uniform(-2.5f, 2.5f),
                 center.z + rng.uniform(-2.5f, 2.5f)};
  const Vec3 target{center.x + rng.uniform(-0.4f, 0.4f),
                    center.y + rng.uniform(-0.4f, 0.4f),
                    center.z + rng.uniform(-0.4f, 0.4f)};
  if (length(eye - target) < 0.05f) {
    GTEST_SKIP() << "degenerate eye==target draw";
  }
  opt.explicit_camera = Camera(eye, target, Vec3{0, 1, 0}, rng.uniform(0.35f, 1.1f),
                               opt.image_width, opt.image_height);
  opt.brick_size = 8 + static_cast<int>(rng.next_below(24));

  const int gpus = 1 + static_cast<int>(rng.next_below(12));
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  const RenderResult mapreduce = render_mapreduce(cluster, volume, opt);
  const ReferenceResult reference =
      render_reference(volume, make_frame(volume, opt), opt.background);

  const ImageDiff diff = compare_images(mapreduce.image, reference.image);
  EXPECT_LT(diff.max_abs, 1e-4) << "seed=" << seed << " dims=" << dims
                                << " bricks=" << mapreduce.num_bricks
                                << " gpus=" << gpus << " eye=" << eye;
  EXPECT_EQ(mapreduce.stats.total_samples, reference.samples) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceFuzz, testing::Range(0, 40));

}  // namespace
}  // namespace vrmr::volren
