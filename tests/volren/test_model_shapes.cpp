// Regression tests for the *reproduced shapes* — the qualitative
// behaviours of the paper's evaluation that the calibrated model must
// keep exhibiting. If a calibration or runtime change breaks one of
// these, the figure benches would silently stop matching the paper;
// these tests make that a test failure instead.
//
// All claims here are scale-robust (they hold at the small geometries
// tests can afford), unlike the exact crossover points, which the
// benches measure at the paper's 512² geometry.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

RenderResult render_gpus(const Volume& volume, int gpus, int bricks,
                         bool include_disk = false) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  RenderOptions opt;
  opt.image_width = 128;
  opt.image_height = 128;
  opt.target_bricks = bricks;
  opt.distance = 1.2f;
  opt.include_disk_io = include_disk;
  return render_mapreduce(cluster, volume, opt);
}

// Fig. 3 / §6.3: "The total time taken to ray cast ... scales linearly
// with the number of GPUs."
TEST(ModelShapes, MapStageScalesInverselyWithGpus) {
  const Volume volume = datasets::skull({64, 64, 64});
  const double m1 = render_gpus(volume, 1, 16).stats.stage.map_s;
  const double m2 = render_gpus(volume, 2, 16).stats.stage.map_s;
  const double m4 = render_gpus(volume, 4, 16).stats.stage.map_s;
  const double m8 = render_gpus(volume, 8, 16).stats.stage.map_s;
  EXPECT_NEAR(m1 / m2, 2.0, 0.4);
  EXPECT_NEAR(m1 / m4, 4.0, 0.8);
  EXPECT_NEAR(m1 / m8, 8.0, 1.6);
}

// Fig. 3: communication (Partition + I/O) grows with GPU count at
// fixed work — the mechanism behind the 8-GPU sweet spot.
TEST(ModelShapes, CommunicationGrowsWithGpuCount) {
  const Volume volume = datasets::skull({64, 64, 64});
  const double c8 = render_gpus(volume, 8, 8).stats.stage.partition_io_s;
  const double c16 = render_gpus(volume, 16, 16).stats.stage.partition_io_s;
  const double c32 = render_gpus(volume, 32, 32).stats.stage.partition_io_s;
  EXPECT_LT(c8, c16);
  EXPECT_LT(c16, c32);
}

// §6.3: at high GPU counts computation stops being the bottleneck.
TEST(ModelShapes, ComputeStopsBeingBottleneckAtScale) {
  const Volume volume = datasets::skull({64, 64, 64});
  const RenderResult r32 = render_gpus(volume, 32, 32);
  EXPECT_GT(r32.stats.stage.partition_io_s, r32.stats.stage.map_s);
}

// Fig. 4 right: voxels/second grows with volume size at fixed GPUs —
// bigger volumes amortize the pipeline's fixed costs.
TEST(ModelShapes, VpsGrowsWithVolumeSize) {
  const RenderResult small = render_gpus(datasets::skull({32, 32, 32}), 8, 8);
  const RenderResult medium = render_gpus(datasets::skull({64, 64, 64}), 8, 8);
  const RenderResult large = render_gpus(datasets::skull({96, 96, 96}), 8, 8);
  EXPECT_LT(small.voxels_per_second(), medium.voxels_per_second());
  EXPECT_LT(medium.voxels_per_second(), large.voxels_per_second());
}

// §3: GPU-class sample rates beat CPU-class rates through the same
// pipeline (the motivation for GPU rendering in the first place).
TEST(ModelShapes, GpuDevicesOutpaceCpuDevices) {
  const Volume volume = datasets::skull({64, 64, 64});
  cluster::HardwareModel cpu_hw = cluster::HardwareModel::ncsa_accelerator_cluster();
  cpu_hw.gpu.sample_rate_per_s = 9e6;  // one 2010 core

  sim::Engine e1;
  cluster::Cluster gpu_cluster(e1, cluster::ClusterConfig::with_total_gpus(4));
  sim::Engine e2;
  cluster::Cluster cpu_cluster(e2, cluster::ClusterConfig::with_total_gpus(4, cpu_hw));
  RenderOptions opt;
  opt.image_width = 128;
  opt.image_height = 128;
  const RenderResult gpu = render_mapreduce(gpu_cluster, volume, opt);
  const RenderResult cpu = render_mapreduce(cpu_cluster, volume, opt);
  EXPECT_LT(gpu.stats.runtime_s, cpu.stats.runtime_s / 2.0);
  // Same pixels regardless of device speed.
  EXPECT_EQ(compare_images(gpu.image, cpu.image).max_abs, 0.0);
}

// §6.2: out-of-core is disk-bound, and disks being per-node means a
// second node buys read bandwidth.
TEST(ModelShapes, OutOfCoreDiskScalesWithNodes) {
  const Volume volume = datasets::skull({64, 64, 64});
  const RenderResult one_node = render_gpus(volume, 4, 8, /*disk=*/true);   // 1 node
  const RenderResult two_nodes = render_gpus(volume, 8, 8, /*disk=*/true);  // 2 nodes
  EXPECT_GT(one_node.stats.runtime_s, 2.0 * render_gpus(volume, 4, 8).stats.runtime_s);
  EXPECT_LT(two_nodes.stats.runtime_s, one_node.stats.runtime_s);
}

// Placement knobs change timing, never pixels.
TEST(ModelShapes, GpuSortPlacementPreservesImage) {
  const Volume volume = datasets::supernova({48, 48, 48});
  auto render_sorted = [&](mr::SortPlacement placement) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
    RenderOptions opt;
    opt.image_width = 96;
    opt.image_height = 96;
    opt.sort = placement;
    return render_mapreduce(cluster, volume, opt);
  };
  const RenderResult on_cpu = render_sorted(mr::SortPlacement::Cpu);
  const RenderResult on_gpu = render_sorted(mr::SortPlacement::Gpu);
  EXPECT_EQ(compare_images(on_cpu.image, on_gpu.image).max_abs, 0.0);
  EXPECT_TRUE(on_gpu.stats.per_reducer[0].sorted_on_gpu);
  EXPECT_FALSE(on_cpu.stats.per_reducer[0].sorted_on_gpu);
  EXPECT_NE(on_cpu.stats.runtime_s, on_gpu.stats.runtime_s);
}

// The paper's §6 claim that small inputs "do not scale very well in
// terms of the number of nodes": for a small volume, 32 GPUs must be
// slower than the best configuration.
TEST(ModelShapes, SmallVolumesStopScaling) {
  const Volume volume = datasets::skull({48, 48, 48});
  double best = 1e30;
  for (int gpus : {1, 2, 4, 8}) {
    best = std::min(best, render_gpus(volume, gpus, gpus).stats.runtime_s);
  }
  const double at32 = render_gpus(volume, 32, 32).stats.runtime_s;
  EXPECT_GT(at32, best);
}

}  // namespace
}  // namespace vrmr::volren
