#include <gtest/gtest.h>

#include "volren/transfer_function.hpp"

namespace vrmr::volren {
namespace {

TEST(TransferFunction, EvaluatesControlPointsExactly) {
  const TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {0.5f, {1, 0, 0, 0.5f}},
                             {1.0f, {1, 1, 1, 1}}});
  EXPECT_EQ(tf.evaluate(0.0f), (Vec4{0, 0, 0, 0}));
  EXPECT_EQ(tf.evaluate(0.5f), (Vec4{1, 0, 0, 0.5f}));
  EXPECT_EQ(tf.evaluate(1.0f), (Vec4{1, 1, 1, 1}));
}

TEST(TransferFunction, InterpolatesLinearlyBetweenPoints) {
  const TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 0.5f, 0, 0.8f}}});
  const Vec4 mid = tf.evaluate(0.5f);
  EXPECT_FLOAT_EQ(mid.x, 0.5f);
  EXPECT_FLOAT_EQ(mid.y, 0.25f);
  EXPECT_FLOAT_EQ(mid.w, 0.4f);
  const Vec4 quarter = tf.evaluate(0.25f);
  EXPECT_FLOAT_EQ(quarter.w, 0.2f);
}

TEST(TransferFunction, ClampsOutsideUnitRange) {
  const TransferFunction tf({{0.2f, {1, 0, 0, 0.1f}}, {0.8f, {0, 1, 0, 0.9f}}});
  EXPECT_EQ(tf.evaluate(-5.0f), tf.evaluate(0.0f));
  EXPECT_EQ(tf.evaluate(0.1f), (Vec4{1, 0, 0, 0.1f}));   // before first point
  EXPECT_EQ(tf.evaluate(0.95f), (Vec4{0, 1, 0, 0.9f}));  // after last point
}

TEST(TransferFunction, RejectsBadControlPoints) {
  const std::vector<TransferPoint> too_few{{0.5f, Vec4{}}};
  EXPECT_THROW(TransferFunction tf(too_few), CheckError);
  const std::vector<TransferPoint> unsorted{{0.8f, Vec4{}}, {0.2f, Vec4{}}};
  EXPECT_THROW(TransferFunction tf(unsorted), CheckError);
}

TEST(TransferFunction, BakeMatchesEvaluateAtTexelCenters) {
  const TransferFunction tf = TransferFunction::fire();
  const auto table = tf.bake(128);
  ASSERT_EQ(table.size(), 128u);
  for (int i = 0; i < 128; i += 13) {
    const float s = (static_cast<float>(i) + 0.5f) / 128.0f;
    EXPECT_EQ(table[static_cast<size_t>(i)], tf.evaluate(s));
  }
}

TEST(TransferFunction, BakeRejectsTinyTables) {
  EXPECT_THROW((void)TransferFunction::bone().bake(1), CheckError);
}

TEST(TransferFunctionPresets, AlphaWithinUnitRange) {
  for (const auto& tf : {TransferFunction::grayscale_ramp(), TransferFunction::bone(),
                         TransferFunction::fire(), TransferFunction::mist()}) {
    for (int i = 0; i <= 100; ++i) {
      const Vec4 v = tf.evaluate(static_cast<float>(i) / 100.0f);
      EXPECT_GE(v.w, 0.0f);
      EXPECT_LE(v.w, 1.0f);
      EXPECT_GE(v.x, 0.0f);
      EXPECT_LE(v.x, 1.0f);
    }
  }
}

TEST(TransferFunctionPresets, RampIsMonotonic) {
  const TransferFunction tf = TransferFunction::grayscale_ramp(0.8f);
  float prev = -1.0f;
  for (int i = 0; i <= 20; ++i) {
    const float a = tf.evaluate(static_cast<float>(i) / 20.0f).w;
    EXPECT_GE(a, prev);
    prev = a;
  }
  EXPECT_FLOAT_EQ(tf.evaluate(1.0f).w, 0.8f);
}

TEST(TransferFunctionPresets, BoneMakesAirInvisible) {
  const TransferFunction tf = TransferFunction::bone();
  EXPECT_EQ(tf.evaluate(0.0f).w, 0.0f);
  EXPECT_EQ(tf.evaluate(0.05f).w, 0.0f);
  EXPECT_GT(tf.evaluate(0.7f).w, 0.3f);  // bone is dense
}

}  // namespace
}  // namespace vrmr::volren
