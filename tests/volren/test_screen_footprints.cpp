// Screen-footprint tests: seeding each brick's FramePlan footprint
// with its camera projection must be invisible to the pixels (the
// footprint is exactly the map kernel's launch rect) while enabling
// per-(mapper, reducer) final-flush readiness — each reducer becomes
// ready no later than under whole-mapper final flushes — and empty
// footprints cull chunks without disturbing the brick -> GPU deal.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/frame_plan.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"
#include "volren/renderer.hpp"

namespace vrmr::volren {
namespace {

struct Scene {
  std::string dataset;
  Int3 dims;
  int gpus = 0;
  int target_bricks = 0;
  mr::PartitionStrategy partition = mr::PartitionStrategy::Striped;
};

std::vector<Scene> seed_scenes() {
  return {
      {"skull", {24, 24, 24}, 4, 0, mr::PartitionStrategy::Striped},
      {"supernova", {32, 32, 32}, 8, 16, mr::PartitionStrategy::Striped},
      {"skull", {16, 16, 16}, 2, 4, mr::PartitionStrategy::PixelRoundRobin},
      {"supernova", {24, 24, 24}, 4, 8, mr::PartitionStrategy::Tiled},
  };
}

struct FootprintRun {
  RenderResult result;
  std::vector<double> ready_s;
  double first_tile_s = std::numeric_limits<double>::infinity();
};

FootprintRun run_scene(const Scene& scene, mr::BarrierMode mode, bool footprints) {
  const Volume volume = datasets::by_name(scene.dataset, scene.dims);
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterConfig::with_total_gpus(scene.gpus));
  RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  options.partition = scene.partition;
  options.barrier_mode = mode;
  options.screen_footprints = footprints;
  if (scene.target_bricks > 0) options.target_bricks = scene.target_bricks;
  const BrickLayout layout = choose_layout(volume, options, scene.gpus);
  auto frame = plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
  frame->plan().run_to_completion();

  FootprintRun run;
  for (int r = 0; r < frame->num_tiles(); ++r) {
    run.ready_s.push_back(frame->plan().reducer_ready_s(r));
    run.first_tile_s = std::min(run.first_tile_s, frame->plan().tile_finish_s(r));
  }
  run.result = frame->finish();
  return run;
}

TEST(ScreenFootprints, PixelsIdenticalWithAndWithoutInBothBarrierModes) {
  for (const Scene& scene : seed_scenes()) {
    for (const mr::BarrierMode mode :
         {mr::BarrierMode::Global, mr::BarrierMode::PerReducer}) {
      const std::string label = scene.dataset + " g=" +
                                std::to_string(scene.gpus) + " " +
                                to_string(mode);
      const FootprintRun with = run_scene(scene, mode, /*footprints=*/true);
      const FootprintRun without = run_scene(scene, mode, /*footprints=*/false);
      const ImageDiff diff =
          compare_images(with.result.image, without.result.image);
      EXPECT_EQ(diff.max_abs, 0.0) << label;
      // Same rays cast, same fragments routed: the footprint only
      // changes when buffers flush, never what they carry.
      EXPECT_EQ(with.result.stats.fragments, without.result.stats.fragments)
          << label;
      EXPECT_EQ(with.result.stats.bytes_net, without.result.stats.bytes_net)
          << label;
    }
  }
}

TEST(ScreenFootprints, PerPairFinalFlushNeverDelaysReadinessOrFirstTile) {
  // Under PerReducer barriers each (mapper, reducer) outbox flushes at
  // its last contributing brick's partition instead of the mapper's
  // final flush — the same flush count per pair, each at an
  // earlier-or-equal time, so every reducer's inbox completes no later.
  for (const Scene& scene : seed_scenes()) {
    const std::string label = scene.dataset + " g=" + std::to_string(scene.gpus);
    const FootprintRun with = run_scene(scene, mr::BarrierMode::PerReducer, true);
    const FootprintRun without = run_scene(scene, mr::BarrierMode::PerReducer, false);
    ASSERT_EQ(with.ready_s.size(), without.ready_s.size()) << label;
    for (std::size_t r = 0; r < with.ready_s.size(); ++r) {
      EXPECT_LE(with.ready_s[r], without.ready_s[r])
          << label << " reducer " << r;
    }
    EXPECT_LE(with.first_tile_s, without.first_tile_s) << label;
  }
}

TEST(ScreenFootprints, FramingCameraCullsNothing) {
  // The default orbit frames the whole volume: every brick projects
  // on-screen, so footprints change flush timing but never the staged
  // work.
  const Scene scene{"skull", {24, 24, 24}, 4, 8, mr::PartitionStrategy::Striped};
  const FootprintRun with = run_scene(scene, mr::BarrierMode::PerReducer, true);
  const FootprintRun without = run_scene(scene, mr::BarrierMode::PerReducer, false);
  EXPECT_EQ(with.result.stats.chunks_culled, 0u);
  EXPECT_EQ(without.result.stats.chunks_culled, 0u);
  EXPECT_EQ(with.result.stats.bytes_h2d, without.result.stats.bytes_h2d);
}

TEST(ScreenFootprints, EmptyFootprintCullsChunkWithoutRemappingTheDeal) {
  // Force one chunk off-screen by hand: it must be culled before
  // staging (H2D shrinks by that brick), the cull is counted, and the
  // dealing positions of every other brick are untouched — the culled
  // chunk's deal slot still advances, so the surviving bricks land on
  // the same GPUs as in the uncalled run (residency caches depend on
  // this invariance).
  const Volume volume = datasets::supernova({32, 32, 32});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
  RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  options.partition = mr::PartitionStrategy::Striped;
  options.target_bricks = 4;
  options.barrier_mode = mr::BarrierMode::PerReducer;
  options.screen_footprints = false;
  const BrickLayout layout = choose_layout(volume, options, 2);
  ASSERT_GE(layout.bricks().size(), 2u);

  auto reference = plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
  reference->plan().run_to_completion();
  const mr::JobStats full = reference->plan().stats();
  ASSERT_EQ(full.chunks_culled, 0u);

  sim::Engine engine2;
  cluster::Cluster cluster2(engine2, cluster::ClusterConfig::with_total_gpus(2));
  auto culled = plan_frame(cluster2, volume, options, mr::StagingHook{}, layout);
  culled->plan().set_chunk_footprint(0, 0, 0, 0, 0);  // empty rect
  culled->plan().run_to_completion();
  const mr::JobStats stats = culled->plan().stats();

  EXPECT_EQ(stats.chunks_culled, 1u);
  EXPECT_EQ(stats.num_chunks, full.num_chunks);  // the chunk still counts
  // The culled brick was never staged...
  EXPECT_EQ(stats.bytes_h2d,
            full.bytes_h2d - layout.bricks().front().device_bytes());
  // ...and the plan still finishes cleanly without it (the culled
  // brick can only remove fragments, never add or reroute them).
  EXPECT_TRUE(culled->plan().finished());
  EXPECT_LE(stats.fragments, full.fragments);
}

}  // namespace
}  // namespace vrmr::volren
