#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "gpusim/texture.hpp"
#include "util/rng.hpp"

namespace vrmr::gpusim {
namespace {

Device& test_device() {
  static DeviceProps props = [] {
    DeviceProps p;
    p.vram_bytes = 1ULL << 30;
    return p;
  }();
  static Device dev(0, props);
  return dev;
}

std::vector<float> linear_field(Int3 dims, Vec3 g, float c) {
  // f(x, y, z) = g·(center of voxel) + c — trilinear interpolation must
  // reproduce a linear field exactly (up to float rounding).
  std::vector<float> v(static_cast<size_t>(dims.volume()));
  size_t i = 0;
  for (int z = 0; z < dims.z; ++z)
    for (int y = 0; y < dims.y; ++y)
      for (int x = 0; x < dims.x; ++x)
        v[i++] = g.x * (static_cast<float>(x) + 0.5f) + g.y * (static_cast<float>(y) + 0.5f) +
                 g.z * (static_cast<float>(z) + 0.5f) + c;
  return v;
}

TEST(Texture3D, AllocatesVram) {
  Device dev(1, DeviceProps{.vram_bytes = 1 << 20});
  {
    Texture3D tex(dev, Int3{16, 16, 16});
    EXPECT_EQ(dev.vram_used(), 16u * 16 * 16 * 4);
  }
  EXPECT_EQ(dev.vram_used(), 0u);
}

TEST(Texture3D, AccountedBytesOverride) {
  Device dev(1, DeviceProps{.vram_bytes = 1 << 20});
  Texture3D tex(dev, Int3{4, 4, 4}, /*accounted_bytes=*/100000);
  EXPECT_EQ(dev.vram_used(), 100000u);
}

TEST(Texture3D, UploadValidatesSize) {
  Texture3D tex(test_device(), Int3{4, 4, 4});
  std::vector<float> wrong(10);
  EXPECT_THROW(tex.upload(wrong), vrmr::CheckError);
  std::vector<float> right(64, 1.0f);
  tex.upload(right);
  EXPECT_TRUE(tex.uploaded());
}

TEST(Texture3D, FetchClampsAddresses) {
  Texture3D tex(test_device(), Int3{2, 2, 2});
  tex.upload(std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(tex.fetch(-5, 0, 0), tex.fetch(0, 0, 0));
  EXPECT_EQ(tex.fetch(9, 1, 1), tex.fetch(1, 1, 1));
  EXPECT_EQ(tex.fetch(0, -1, 9), tex.fetch(0, 0, 1));
}

TEST(Texture3D, SampleAtVoxelCentersReturnsStoredValues) {
  const Int3 dims{5, 4, 3};
  Texture3D tex(test_device(), dims);
  std::vector<float> v(static_cast<size_t>(dims.volume()));
  Pcg32 rng(3);
  for (auto& x : v) x = rng.next_float();
  tex.upload(v);
  for (int z = 0; z < dims.z; ++z) {
    for (int y = 0; y < dims.y; ++y) {
      for (int x = 0; x < dims.x; ++x) {
        // Voxel center in unnormalized texture coordinates is i + 0.5.
        const float got = tex.sample(Vec3{static_cast<float>(x) + 0.5f,
                                          static_cast<float>(y) + 0.5f,
                                          static_cast<float>(z) + 0.5f});
        EXPECT_FLOAT_EQ(got, tex.fetch(x, y, z));
      }
    }
  }
}

TEST(Texture3D, TrilinearReproducesLinearField) {
  const Int3 dims{8, 8, 8};
  Texture3D tex(test_device(), dims);
  const Vec3 g{0.3f, -0.2f, 0.5f};
  const float c = 1.0f;
  tex.upload(linear_field(dims, g, c));
  Pcg32 rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    // Stay a voxel away from the borders so clamping never kicks in.
    const Vec3 p{rng.uniform(1.0f, 7.0f), rng.uniform(1.0f, 7.0f), rng.uniform(1.0f, 7.0f)};
    const float expected = g.x * p.x + g.y * p.y + g.z * p.z + c;
    EXPECT_NEAR(tex.sample(p), expected, 1e-4f);
  }
}

TEST(Texture3D, SampleClampsBeyondEdges) {
  const Int3 dims{4, 4, 4};
  Texture3D tex(test_device(), dims);
  std::vector<float> v(64);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(i);
  tex.upload(v);
  // Far outside: clamps to the corner texel.
  EXPECT_FLOAT_EQ(tex.sample(Vec3{-10, -10, -10}), tex.fetch(0, 0, 0));
  EXPECT_FLOAT_EQ(tex.sample(Vec3{10, 10, 10}), tex.fetch(3, 3, 3));
}

TEST(Texture3D, MidpointBetweenTexelsAverages) {
  Texture3D tex(test_device(), Int3{2, 1, 1});
  // Clamp semantics need at least 2 texels per axis only on x here.
  tex.upload(std::vector<float>{1.0f, 3.0f});
  EXPECT_FLOAT_EQ(tex.sample(Vec3{1.0f, 0.5f, 0.5f}), 2.0f);
}

TEST(Texture1D, LookupAtTexelCenters) {
  Texture1D tex(test_device(), 4);
  const std::vector<Vec4> table{{1, 0, 0, 0.1f}, {0, 1, 0, 0.2f}, {0, 0, 1, 0.3f},
                                {1, 1, 1, 0.4f}};
  tex.upload(table);
  for (int i = 0; i < 4; ++i) {
    const float t = (static_cast<float>(i) + 0.5f) / 4.0f;
    const Vec4 got = tex.sample(t);
    EXPECT_EQ(got, table[static_cast<size_t>(i)]) << "texel " << i;
  }
}

TEST(Texture1D, InterpolatesBetweenTexels) {
  Texture1D tex(test_device(), 2);
  tex.upload(std::vector<Vec4>{{0, 0, 0, 0}, {1, 1, 1, 1}});
  const Vec4 mid = tex.sample(0.5f);
  EXPECT_NEAR(mid.w, 0.5f, 1e-6f);
}

TEST(Texture1D, ClampsOutOfRangeLookups) {
  Texture1D tex(test_device(), 8);
  std::vector<Vec4> table(8);
  table.front() = {1, 2, 3, 4};
  table.back() = {5, 6, 7, 8};
  tex.upload(table);
  EXPECT_EQ(tex.sample(-1.0f), table.front());
  EXPECT_EQ(tex.sample(2.0f), table.back());
}

TEST(Texture1D, UploadValidatesSize) {
  Texture1D tex(test_device(), 8);
  std::vector<Vec4> wrong(4);
  EXPECT_THROW(tex.upload(wrong), vrmr::CheckError);
}

}  // namespace
}  // namespace vrmr::gpusim
