#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "gpusim/device.hpp"

namespace vrmr::gpusim {
namespace {

DeviceProps small_props(std::uint64_t vram = 1024) {
  DeviceProps p;
  p.vram_bytes = vram;
  return p;
}

TEST(DeviceMemory, TracksAllocationsAndFrees) {
  Device dev(0, small_props(1000));
  EXPECT_EQ(dev.vram_used(), 0u);
  {
    const DeviceAllocation a = dev.allocate(400, "a");
    EXPECT_EQ(dev.vram_used(), 400u);
    EXPECT_EQ(dev.vram_available(), 600u);
    {
      const DeviceAllocation b = dev.allocate(600, "b");
      EXPECT_EQ(dev.vram_used(), 1000u);
    }
    EXPECT_EQ(dev.vram_used(), 400u);
  }
  EXPECT_EQ(dev.vram_used(), 0u);
}

TEST(DeviceMemory, ThrowsOnExhaustion) {
  Device dev(0, small_props(1000));
  const DeviceAllocation a = dev.allocate(800, "big");
  EXPECT_THROW((void)dev.allocate(300, "overflow"), DeviceOutOfMemory);
  // Failed allocation must not leak accounting.
  EXPECT_EQ(dev.vram_used(), 800u);
  EXPECT_TRUE(dev.can_allocate(200));
  EXPECT_FALSE(dev.can_allocate(201));
}

TEST(DeviceMemory, OomMessageNamesTheAllocation) {
  Device dev(0, small_props(10));
  try {
    (void)dev.allocate(100, "brick-texture");
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_NE(std::string(e.what()).find("brick-texture"), std::string::npos);
  }
}

TEST(DeviceMemory, MoveTransfersOwnership) {
  Device dev(0, small_props(1000));
  DeviceAllocation a = dev.allocate(500, "a");
  DeviceAllocation b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.vram_used(), 500u);
  DeviceAllocation c;
  c = std::move(b);
  EXPECT_EQ(dev.vram_used(), 500u);
  c.release();
  EXPECT_EQ(dev.vram_used(), 0u);
  c.release();  // double release is a no-op
  EXPECT_EQ(dev.vram_used(), 0u);
}

TEST(DeviceLaunch, CoversEveryThreadExactlyOnce) {
  Device dev(0, small_props());
  std::set<std::pair<int, int>> seen;
  std::mutex m;
  const std::uint64_t threads = dev.launch_2d(
      Int3{3, 2, 1}, Int3{4, 4, 1}, [&](const ThreadCtx& ctx) {
        std::lock_guard<std::mutex> lock(m);
        const bool inserted = seen.emplace(ctx.global_x(), ctx.global_y()).second;
        EXPECT_TRUE(inserted) << "duplicate thread " << ctx.global_x() << ","
                              << ctx.global_y();
      });
  EXPECT_EQ(threads, 3u * 2 * 4 * 4);
  EXPECT_EQ(seen.size(), threads);
  // Full coverage of the 12x8 thread grid.
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 12; ++x) EXPECT_TRUE(seen.count({x, y}));
}

TEST(DeviceLaunch, ThreadCtxGeometryIsConsistent) {
  Device dev(0, small_props());
  dev.launch_2d(Int3{2, 3, 1}, Int3{8, 4, 1}, [&](const ThreadCtx& ctx) {
    EXPECT_GE(ctx.thread_idx.x, 0);
    EXPECT_LT(ctx.thread_idx.x, ctx.block_dim.x);
    EXPECT_GE(ctx.thread_idx.y, 0);
    EXPECT_LT(ctx.thread_idx.y, ctx.block_dim.y);
    EXPECT_LT(ctx.block_idx.x, ctx.grid_dim.x);
    EXPECT_LT(ctx.block_idx.y, ctx.grid_dim.y);
    EXPECT_EQ(ctx.global_x(), ctx.block_idx.x * 8 + ctx.thread_idx.x);
    EXPECT_EQ(ctx.global_y(), ctx.block_idx.y * 4 + ctx.thread_idx.y);
  });
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(DeviceLaunch, RejectsOversizedBlocks) {
  Device dev(0, small_props());
  EXPECT_THROW(dev.launch_2d(Int3{1, 1, 1}, Int3{64, 64, 1}, [](const ThreadCtx&) {}),
               vrmr::CheckError);
  EXPECT_THROW(dev.launch_2d(Int3{0, 1, 1}, Int3{8, 8, 1}, [](const ThreadCtx&) {}),
               vrmr::CheckError);
}

TEST(DeviceProps, KernelTimeModel) {
  DeviceProps p;
  p.sample_rate_per_s = 1e9;
  p.kernel_launch_overhead_s = 1e-5;
  p.mem_bandwidth_Bps = 1e11;
  // Overhead only.
  EXPECT_DOUBLE_EQ(p.kernel_time(0), 1e-5);
  // 1e9 samples at 1e9/s = 1s + overhead.
  EXPECT_NEAR(p.kernel_time(1000000000), 1.0 + 1e-5, 1e-9);
  // Output bytes add memory time.
  EXPECT_GT(p.kernel_time(1000, 1 << 30), p.kernel_time(1000, 0));
}

TEST(DeviceProps, DefaultsModelTeslaC1060) {
  const DeviceProps p;
  EXPECT_EQ(p.vram_bytes, 4ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(p.multiprocessors, 30);
  EXPECT_GT(p.sample_rate_per_s, 1e8);
}

}  // namespace
}  // namespace vrmr::gpusim
