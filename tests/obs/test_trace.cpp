// Flight-recorder tests: a sharded mixed-priority run records a
// well-formed Chrome trace — balanced B/E spans per (pid, tid) track
// with non-decreasing timestamps, paired async b/e events per
// (cat, id), frame arrows unique across shards, and the instrumentation
// every layer promised (map/sort/reduce quanta, admission, cache
// events) actually present.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "service/frontend.hpp"
#include "volren/datasets.hpp"

namespace vrmr::obs {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

/// A 2-shard farm with interactive + batch sessions, recorded.
TraceRecorder record_farm_run(service::FrontendConfig config = {}) {
  config.shards = 2;
  config.gpus_per_shard = 2;
  TraceRecorder recorder;

  const volren::Volume skull = volren::datasets::skull({24, 24, 24});
  const volren::Volume supernova = volren::datasets::supernova({32, 32, 32});
  service::ServiceFrontend frontend(config);
  frontend.set_trace(&recorder);

  service::Session live =
      frontend.open_session("live", service::Priority::Interactive);
  service::Session batch =
      frontend.open_session("batch", service::Priority::Batch);
  volren::RenderOptions batch_options = tiny_options();
  batch_options.target_bricks = 8;
  batch.submit_orbit(supernova, batch_options, 4, 0.0, 0.0);
  live.submit_orbit(skull, tiny_options(), 6, 0.0005, 0.001);
  frontend.drain();
  return recorder;
}

TEST(Trace, SpansBalanceAndTimestampsAdvancePerTrack) {
  const TraceRecorder recorder = record_farm_run();
  ASSERT_GT(recorder.size(), 0u);

  std::map<std::pair<int, int>, int> open_depth;     // (pid, tid) -> B depth
  std::map<std::pair<int, int>, double> last_ts;     // per-track clock
  std::map<std::pair<std::string, std::uint64_t>, int> open_async;
  for (const TraceEvent& event : recorder.events()) {
    const std::pair<int, int> track{event.pid, event.tid};
    if (event.ph == 'B' || event.ph == 'E' || event.ph == 'i') {
      // Each track lives on one shard's simulated clock: time within a
      // track never runs backwards.
      const auto it = last_ts.find(track);
      if (it != last_ts.end()) {
        EXPECT_GE(event.ts_s, it->second)
            << event.name << " on pid " << event.pid << " tid " << event.tid;
      }
      last_ts[track] = event.ts_s;
    }
    switch (event.ph) {
      case 'B':
        ++open_depth[track];
        break;
      case 'E':
        ASSERT_GT(open_depth[track], 0)
            << "E without B on pid " << event.pid << " tid " << event.tid;
        --open_depth[track];
        break;
      case 'b':
        ++open_async[{event.cat, event.id}];
        break;
      case 'e':
        ASSERT_GT((open_async[{event.cat, event.id}]), 0)
            << "async end without begin: " << event.name;
        --open_async[{event.cat, event.id}];
        break;
      default:
        break;
    }
  }
  for (const auto& [track, depth] : open_depth) {
    EXPECT_EQ(depth, 0) << "unclosed span on pid " << track.first << " tid "
                        << track.second;
  }
  for (const auto& [key, depth] : open_async) {
    EXPECT_EQ(depth, 0) << "unclosed async span in cat " << key.first;
  }
}

TEST(Trace, EveryLayerRecordsItsPromisedEvents) {
  const TraceRecorder recorder = record_farm_run();

  std::set<std::string> names;
  std::set<int> pids_with_map;
  std::set<int> map_tids;
  std::set<int> reducer_tids;
  std::uint64_t frame_arrows = 0;
  for (const TraceEvent& event : recorder.events()) {
    if (event.ph == 'M') continue;
    names.insert(event.name);
    if (event.ph == 'B' && event.name == "map") {
      pids_with_map.insert(event.pid);
      map_tids.insert(event.tid);
    }
    if (event.ph == 'B' && (event.name == "sort" || event.name == "reduce")) {
      reducer_tids.insert(event.tid);
    }
    if (event.ph == 'b' && event.cat == "frame") ++frame_arrows;
  }
  // Plan-level quanta on both shards, on GPU-lane tracks (tid < lanes).
  EXPECT_EQ(pids_with_map, (std::set<int>{0, 1}));
  for (const int tid : map_tids) EXPECT_LT(tid, 2);
  // Sort/reduce chains live on the per-reducer tracks: interactive
  // frames at base 1000, batch at base 2000 — both classes ran.
  bool saw_interactive_reducer = false, saw_batch_reducer = false;
  for (const int tid : reducer_tids) {
    if (tid >= 1000 && tid < 2000) saw_interactive_reducer = true;
    if (tid >= 2000) saw_batch_reducer = true;
  }
  EXPECT_TRUE(saw_interactive_reducer);
  EXPECT_TRUE(saw_batch_reducer);
  // Service instrumentation: admission + per-brick cache events (a
  // fresh farm must miss at least once), one frame arrow per frame.
  EXPECT_TRUE(names.count("admit"));
  EXPECT_TRUE(names.count("cache_miss"));
  EXPECT_TRUE(names.count("frame"));
  EXPECT_TRUE(names.count("reducer_ready"));
  EXPECT_EQ(frame_arrows, 10u);  // 6 interactive + 4 batch frames
}

TEST(Trace, FrameArrowIdsAreUniqueAcrossShards) {
  // The frame async id bakes the shard in (pid * 10^6 + frame_id):
  // frame 0 on shard 0 and frame 0 on shard 1 must not pair with each
  // other even though both live in cat "frame".
  const TraceRecorder recorder = record_farm_run();
  std::set<std::uint64_t> begun;
  for (const TraceEvent& event : recorder.events()) {
    if (event.ph != 'b' || event.cat != "frame") continue;
    EXPECT_TRUE(begun.insert(event.id).second)
        << "duplicate frame arrow id " << event.id;
  }
  EXPECT_EQ(begun.size(), 10u);
}

TEST(Trace, JsonExportIsWellFormedAndNamesTracks) {
  const TraceRecorder recorder = record_farm_run();
  const std::string json = recorder.to_json();
  // Spot-check the envelope and the metadata the frontend emits; the
  // CI smoke runs the full structural validation via
  // tools/validate_trace.py on an exported file.
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("shard0"), std::string::npos);
  EXPECT_NE(json.find("shard1"), std::string::npos);
  EXPECT_NE(json.find("gpu0 lane"), std::string::npos);
}

TEST(Trace, DetachedServiceRecordsNothing) {
  // The null-recorder path really is a no-op: the same run with no
  // recorder attached must not touch a recorder at all (compile-time
  // API: nothing to attach), and attaching then detaching stops
  // recording.
  TraceRecorder recorder;
  service::FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  service::ServiceFrontend frontend(config);
  frontend.set_trace(&recorder);
  frontend.set_trace(nullptr);
  const std::size_t baseline = recorder.size();  // metadata from attach

  const volren::Volume skull = volren::datasets::skull({16, 16, 16});
  service::Session s = frontend.open_session("quiet");
  s.submit_orbit(skull, tiny_options(), 2, 0.0, 0.0);
  frontend.drain();
  EXPECT_EQ(recorder.size(), baseline);
}

}  // namespace
}  // namespace vrmr::obs
