// Critical-path attribution tests: on every seed scene the seven
// segments partition the frame's end-to-end latency exactly —
// boundaries anchored at the FrameRecord's arrival and finish stamps,
// monotone, with the dominant segment really the largest — and the
// decomposition stays sound for queued frames (nonzero QueueWait) and
// bare plan runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/frame_plan.hpp"
#include "obs/critical_path.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"

namespace vrmr::obs {
namespace {

struct Scene {
  std::string dataset;
  Int3 dims;
  int gpus = 0;
  int target_bricks = 0;
  mr::PartitionStrategy partition = mr::PartitionStrategy::Striped;
};

std::vector<Scene> seed_scenes() {
  return {
      {"skull", {24, 24, 24}, 4, 0, mr::PartitionStrategy::Striped},
      {"supernova", {32, 32, 32}, 8, 16, mr::PartitionStrategy::Striped},
      {"plume", {16, 16, 32}, 2, 4, mr::PartitionStrategy::PixelRoundRobin},
      {"supernova", {24, 24, 24}, 4, 8, mr::PartitionStrategy::Tiled},
  };
}

volren::RenderOptions options_for(const Scene& scene) {
  volren::RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  options.partition = scene.partition;
  if (scene.target_bricks > 0) options.target_bricks = scene.target_bricks;
  return options;
}

void expect_sound(const CriticalPath& path, double arrival_s, double finish_s,
                  int num_reducers, const std::string& label) {
  ASSERT_TRUE(path.valid) << label;
  ASSERT_GE(path.critical_reducer, 0) << label;
  ASSERT_LT(path.critical_reducer, num_reducers) << label;
  // Anchors: t0 is the arrival, t7 the delivery.
  EXPECT_DOUBLE_EQ(path.boundary_s.front(), arrival_s) << label;
  EXPECT_DOUBLE_EQ(path.boundary_s.back(), finish_s) << label;
  // Monotone boundaries: every segment is non-negative.
  for (int i = 0; i < kNumPathSegments; ++i) {
    EXPECT_LE(path.boundary_s[static_cast<std::size_t>(i)],
              path.boundary_s[static_cast<std::size_t>(i) + 1])
        << label << " segment " << i;
  }
  // The partition identity: segments sum to the end-to-end latency.
  // total_s() is exact by construction (shared boundaries); the
  // explicit per-segment sum re-associates the additions, so allow
  // rounding at the last-ulp scale.
  EXPECT_DOUBLE_EQ(path.total_s(), finish_s - arrival_s) << label;
  double sum = 0.0;
  for (int i = 0; i < kNumPathSegments; ++i) {
    sum += path.segment_s(static_cast<PathSegment>(i));
  }
  EXPECT_NEAR(sum, finish_s - arrival_s,
              1e-12 * std::max(1.0, std::abs(finish_s)))
      << label;
  // dominant() names a real segment, and really the largest.
  const PathSegment dom = path.dominant();
  for (int i = 0; i < kNumPathSegments; ++i) {
    EXPECT_GE(path.segment_s(dom), path.segment_s(static_cast<PathSegment>(i)))
        << label;
  }
  // The one-line rendering mentions the dominant segment by name.
  EXPECT_NE(path.to_string().find(to_string(dom)), std::string::npos) << label;
}

TEST(CriticalPath, PartitionsServedFrameLatencyOnEverySeedScene) {
  for (const Scene& scene : seed_scenes()) {
    const std::string label = scene.dataset + " g=" + std::to_string(scene.gpus);
    const volren::Volume volume =
        volren::datasets::by_name(scene.dataset, scene.dims);
    sim::Engine engine;
    cluster::Cluster cluster(
        engine, cluster::ClusterConfig::with_total_gpus(scene.gpus));
    service::RenderService service(cluster);
    service::Session session = service.open_session("scene");
    service::RenderRequest request;
    request.volume = &volume;
    request.options = options_for(scene);
    request.arrival_s = 0.0;
    session.submit(request);
    service.drain();

    ASSERT_EQ(service.frames().size(), 1u) << label;
    const service::FrameRecord& record = service.frames().front();
    expect_sound(record.critical_path, record.arrival_s, record.finish_s,
                 record.tiles, label);
  }
}

TEST(CriticalPath, QueueWaitSegmentCapturesSchedulingDelay) {
  // Two frames submitted together: the second waits for the first, so
  // its QueueWait segment must equal its recorded queue wait — the
  // scheduling share of latency lands in the scheduling segment, not
  // smeared into the dataflow ones.
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
  service::RenderService service(cluster);
  service::Session session = service.open_session("queued");
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  for (int f = 0; f < 2; ++f) {
    service::RenderRequest request;
    request.volume = &volume;
    request.options = options;
    request.arrival_s = 0.0;
    session.submit(request);
  }
  service.drain();

  ASSERT_EQ(service.frames().size(), 2u);
  const service::FrameRecord& second = service.frames().back();
  EXPECT_GT(second.queue_wait_s(), 0.0) << "second frame should have queued";
  const CriticalPath& path = second.critical_path;
  ASSERT_TRUE(path.valid);
  EXPECT_DOUBLE_EQ(path.segment_s(PathSegment::QueueWait),
                   second.queue_wait_s());
  expect_sound(path, second.arrival_s, second.finish_s, second.tiles,
               "queued frame");
}

TEST(CriticalPath, BarePlanDecomposesWithPlanLevelStamps) {
  // The analyzer works below the service too: a directly driven plan
  // decomposes between its own t0 and its last tile, with QueueWait and
  // Delivery collapsed to zero.
  const Scene scene{"supernova", {32, 32, 32}, 4, 8,
                    mr::PartitionStrategy::Striped};
  const volren::Volume volume =
      volren::datasets::by_name(scene.dataset, scene.dims);
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterConfig::with_total_gpus(scene.gpus));
  volren::RenderOptions options = options_for(scene);
  const volren::BrickLayout layout =
      volren::choose_layout(volume, options, scene.gpus);
  auto frame =
      volren::plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
  frame->plan().run_to_completion();

  double last_tile = 0.0;
  for (int r = 0; r < frame->num_tiles(); ++r) {
    last_tile = std::max(last_tile, frame->plan().tile_finish_s(r));
  }
  const double t0 = frame->plan().t0_s();
  const CriticalPath path = analyze_plan(frame->plan(), t0, t0, last_tile);
  expect_sound(path, t0, last_tile, frame->num_tiles(), "bare plan");
  EXPECT_DOUBLE_EQ(path.segment_s(PathSegment::QueueWait), 0.0);
  EXPECT_DOUBLE_EQ(path.segment_s(PathSegment::Delivery), 0.0);
  // The critical reducer is the one whose tile landed last.
  EXPECT_DOUBLE_EQ(frame->plan().tile_finish_s(path.critical_reducer),
                   last_tile);
}

TEST(CriticalPath, CompressedServingKeepsThePartitionExact) {
  // Compressed serving charges a decompress quantum before every map
  // kernel. It runs on the same stream whose completion stamps the
  // StageMap boundary (see obs/critical_path.hpp), so the invariant is
  // EXTENDED, not relaxed: frames really decompress, and the seven
  // segments still partition finish - arrival exactly.
  for (const Scene& scene : seed_scenes()) {
    const std::string label =
        scene.dataset + " g=" + std::to_string(scene.gpus) + " compressed";
    const volren::Volume volume =
        volren::datasets::by_name(scene.dataset, scene.dims);
    sim::Engine engine;
    cluster::Cluster cluster(
        engine, cluster::ClusterConfig::with_total_gpus(scene.gpus));
    service::ServiceConfig config;
    config.compression = compress::Codec::Rle;
    service::RenderService service(cluster, config);
    service::Session session = service.open_session("scene");
    service::RenderRequest request;
    request.volume = &volume;
    request.options = options_for(scene);
    request.arrival_s = 0.0;
    session.submit(request);
    service.drain();

    ASSERT_EQ(service.frames().size(), 1u) << label;
    EXPECT_GT(service.stats().chunks_decompressed, 0u) << label;
    EXPECT_GT(service.stats().decompress_s_total, 0.0) << label;
    const service::FrameRecord& record = service.frames().front();
    expect_sound(record.critical_path, record.arrival_s, record.finish_s,
                 record.tiles, label);
  }
}

TEST(CriticalPath, UnfinishedPlanIsInvalid) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  const volren::BrickLayout layout = volren::choose_layout(volume, options, 2);
  auto frame =
      volren::plan_frame(cluster, volume, options, mr::StagingHook{}, layout);
  // Never started, never finished: no path to attribute.
  const CriticalPath path = analyze_plan(frame->plan(), 0.0, 0.0, 0.0);
  EXPECT_FALSE(path.valid);
  EXPECT_EQ(path.critical_reducer, -1);
}

}  // namespace
}  // namespace vrmr::obs
