// Metrics-registry tests: LogHistogram quantiles against exact sample
// quantiles (the documented one-bucket error bound), underflow
// handling, and the Registry's name-keyed accessors with reference
// stability.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

using vrmr::Pcg32;

namespace vrmr::obs {
namespace {

/// Exact nearest-rank quantile of a sample set (the estimator the
/// histogram approximates).
double exact_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(std::max<double>(
      1.0, std::ceil(q * static_cast<double>(samples.size()))));
  return samples[rank - 1];
}

TEST(LogHistogram, QuantileWithinOneBucketOfExactOnLogUniformSamples) {
  // Samples spanning six decades — the dynamic range latencies cover
  // (microseconds to tens of seconds). Every reported quantile must be
  // within the documented relative error: est/exact in
  // [1/growth, growth] (the estimate is the geometric midpoint of the
  // bucket holding the exact sample, so it is off by at most half a
  // bucket either way).
  Pcg32 rng(42);
  LogHistogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-5 * std::pow(10.0, 6.0 * rng.next_double());
    samples.push_back(v);
    hist.observe(v);
  }
  ASSERT_EQ(hist.count(), samples.size());
  const double growth = LogHistogram::kDefaultGrowth;
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(samples, q);
    const double est = hist.quantile(q);
    EXPECT_GE(est / exact, 1.0 / growth) << "q=" << q;
    EXPECT_LE(est / exact, growth) << "q=" << q;
  }
  // relative_error() advertises exactly that bound.
  EXPECT_DOUBLE_EQ(hist.relative_error(), growth - 1.0);
}

TEST(LogHistogram, SummaryMatchesIndividualQuantilesAndMoments) {
  LogHistogram hist;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    hist.observe(i * 1e-3);
    sum += i * 1e-3;
  }
  const LogHistogram::Summary s = hist.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.p50, hist.quantile(0.50));
  EXPECT_DOUBLE_EQ(s.p95, hist.quantile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, hist.quantile(0.99));
  EXPECT_DOUBLE_EQ(s.p999, hist.quantile(0.999));
  // Moments are exact (not bucketed).
  EXPECT_DOUBLE_EQ(hist.mean(), sum / 1000.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1e-3);
  EXPECT_DOUBLE_EQ(hist.max(), 1.0);
  // The p99.9 of 1..1000 ms is the 1000th sample's bucket.
  EXPECT_GE(s.p999, 1.0 / LogHistogram::kDefaultGrowth);
}

TEST(LogHistogram, UnderflowReportsMinValueAndKeepsExactMoments) {
  LogHistogram hist(1e-6);
  hist.observe(0.0);      // below min_value: underflow bucket
  hist.observe(1e-9);     // ditto
  hist.observe(1e-3);
  EXPECT_EQ(hist.count(), 3u);
  // Quantiles landing in the underflow bucket report min_value (the
  // histogram cannot resolve below it)...
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 1e-6);
  // ...while the top sample resolves normally...
  const double p99 = hist.quantile(0.99);
  EXPECT_GE(p99 / 1e-3, 1.0 / LogHistogram::kDefaultGrowth);
  EXPECT_LE(p99 / 1e-3, LogHistogram::kDefaultGrowth);
  // ...and the exact moments still see the true values.
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.sum(), 1e-9 + 1e-3);
}

TEST(LogHistogram, EmptyHistogramIsInert) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.summary().count, 0u);
}

TEST(Registry, AccessorsCreateOnceAndStayReferenceStable) {
  Registry registry;
  Counter& frames = registry.counter("service.frames");
  frames.inc();
  frames.inc(2);
  Gauge& depth = registry.gauge("engine.queue_depth");
  depth.set(3.0);
  depth.add(1.5);
  LogHistogram& wait = registry.histogram("interactive.queue_wait_s");
  wait.observe(0.25);

  // Same name -> same object (references stay valid as more metrics
  // are created around them — the serving layer holds them per class).
  registry.counter("service.other");
  registry.histogram("batch.queue_wait_s").observe(1.0);
  EXPECT_EQ(&registry.counter("service.frames"), &frames);
  EXPECT_EQ(&registry.histogram("interactive.queue_wait_s"), &wait);
  EXPECT_EQ(frames.value(), 3u);
  EXPECT_DOUBLE_EQ(depth.value(), 4.5);

  // Read-side lookup: present vs absent.
  ASSERT_NE(registry.find_histogram("interactive.queue_wait_s"), nullptr);
  EXPECT_EQ(registry.find_histogram("interactive.queue_wait_s")->count(), 1u);
  EXPECT_EQ(registry.find_histogram("no.such.histogram"), nullptr);

  // The dump mentions every metric once.
  const std::string dump = registry.to_string();
  EXPECT_NE(dump.find("service.frames"), std::string::npos);
  EXPECT_NE(dump.find("engine.queue_depth"), std::string::npos);
  EXPECT_NE(dump.find("interactive.queue_wait_s"), std::string::npos);
}

}  // namespace
}  // namespace vrmr::obs
