// Brick codec tests: RLE round-trips every seed scene's bricks
// bit-exactly (NaN / -0.0 payloads included), the zfp-style size model
// never exceeds logical bytes, and an adversarial noise volume — ratio
// ~1.0 on both codecs — never models stored > logical (which would
// underflow byte budgets computed on logical sizes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "compress/brick_codec.hpp"
#include "lod/occupancy.hpp"
#include "volren/datasets.hpp"
#include "volren/renderer.hpp"
#include "volren/volume.hpp"

namespace vrmr::compress {
namespace {

struct Scene {
  std::string dataset;
  Int3 dims;
  int gpus = 0;
  int target_bricks = 0;
};

std::vector<Scene> seed_scenes() {
  return {
      {"skull", {24, 24, 24}, 4, 0},
      {"supernova", {32, 32, 32}, 8, 16},
      {"plume", {16, 16, 32}, 2, 4},
      {"supernova", {24, 24, 24}, 4, 8},
  };
}

volren::BrickLayout layout_for(const volren::Volume& volume, const Scene& scene) {
  volren::RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  if (scene.target_bricks > 0) options.target_bricks = scene.target_bricks;
  return volren::choose_layout(volume, options, scene.gpus);
}

/// Full-range hash noise: no two adjacent voxels share a bit pattern,
/// and every thumbnail cell spans ~[0, 1] — worst case for both codecs.
volren::Volume noise_volume(Int3 dims) {
  return volren::Volume::procedural("noise", dims, [](Int3 p) {
    std::uint64_t x = static_cast<std::uint64_t>(p.x) * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(p.y) * 0xd6e8feb86659fd93ULL +
                      static_cast<std::uint64_t>(p.z) * 0xbf58476d1ce4e5b9ULL +
                      0x94d049bb133111ebULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<float>(x >> 40) / 16777216.0f;
  });
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(BrickCodec, RleRoundTripsEverySeedSceneBitExactly) {
  const RleCodec rle;
  for (const Scene& scene : seed_scenes()) {
    const std::string label = scene.dataset + " " + std::to_string(scene.dims.x);
    const volren::Volume volume =
        volren::datasets::by_name(scene.dataset, scene.dims);
    const volren::BrickLayout layout = layout_for(volume, scene);
    ASSERT_GT(layout.num_bricks(), 0) << label;
    for (const volren::BrickInfo& info : layout.bricks()) {
      const std::vector<float> voxels =
          volume.materialize(info.padded_origin, info.padded_dims);
      const std::vector<std::uint8_t> stream = rle.encode(voxels);
      // Never larger than raw, and when it IS smaller it is strictly
      // smaller (decode keys the raw fallback on size equality).
      EXPECT_LE(stream.size(), voxels.size() * sizeof(float))
          << label << " brick " << info.id;
      EXPECT_EQ(stream.size(), rle.stored_bytes(voxels, info.padded_dims))
          << label << " brick " << info.id;
      const std::vector<float> round = rle.decode(stream, voxels.size());
      EXPECT_TRUE(bit_identical(voxels, round)) << label << " brick " << info.id;
    }
  }
}

TEST(BrickCodec, RlePreservesNanAndSignedZeroPatterns) {
  // Runs compare 32-bit patterns, not float values: a NaN payload and
  // -0.0 vs +0.0 must survive (value comparison would merge or drop
  // them — NaN != NaN and -0.0 == +0.0).
  const RleCodec rle;
  std::vector<float> voxels(64, 0.0f);
  voxels[10] = std::numeric_limits<float>::quiet_NaN();
  voxels[11] = std::numeric_limits<float>::quiet_NaN();
  voxels[20] = -0.0f;
  voxels[30] = std::numeric_limits<float>::infinity();
  const std::vector<float> round = rle.decode(rle.encode(voxels), voxels.size());
  EXPECT_TRUE(bit_identical(voxels, round));
}

TEST(BrickCodec, RleCollapsesUniformBrickToOnePair) {
  const RleCodec rle;
  const std::vector<float> voxels(4096, 0.25f);
  const std::vector<std::uint8_t> stream = rle.encode(voxels);
  EXPECT_EQ(stream.size(), 8u);  // one (count, value) pair
  EXPECT_TRUE(bit_identical(voxels, rle.decode(stream, voxels.size())));
}

TEST(BrickCodec, ZfpStyleSizesNeverExceedLogicalOnSeedScenes) {
  const ZfpStyleCodec zfp;
  for (const Scene& scene : seed_scenes()) {
    const std::string label = scene.dataset + " " + std::to_string(scene.dims.x);
    const volren::Volume volume =
        volren::datasets::by_name(scene.dataset, scene.dims);
    const volren::BrickLayout layout = layout_for(volume, scene);
    const CompressionPlan plan = analyze(volume, layout, zfp);
    ASSERT_EQ(static_cast<int>(plan.bricks.size()), layout.num_bricks()) << label;
    for (const volren::BrickInfo& info : layout.bricks()) {
      const BrickCompression& bc = plan.brick(info.id);
      EXPECT_EQ(bc.logical_bytes, info.device_bytes()) << label;
      EXPECT_LE(bc.stored_bytes, bc.logical_bytes) << label;
      EXPECT_GT(bc.stored_bytes, 0u) << label;
      EXPECT_GT(bc.decompress_s, 0.0) << label;
    }
    EXPECT_GE(plan.ratio(), 1.0) << label;
    // zfp-style decode is a passthrough (the ratio is modeled).
    const volren::BrickInfo& info = layout.bricks().front();
    const std::vector<float> voxels =
        volume.materialize(info.padded_origin, info.padded_dims);
    EXPECT_TRUE(
        bit_identical(voxels, zfp.decode(zfp.encode(voxels), voxels.size())))
        << label;
  }
}

TEST(BrickCodec, ThumbnailIntervalsTrackTheMaterializedModel) {
  // analyze() with an exact occupancy index reads the thumbnail
  // intervals instead of re-scanning voxels. The thumbnail's cells
  // overlap by one voxel (interpolant soundness), so its intervals are
  // slightly wider than the codec's own disjoint-cell scan — the two
  // models must stay close and honor the same clamp, not match to the
  // byte.
  const Scene scene{"supernova", {32, 32, 32}, 8, 16};
  const volren::Volume volume =
      volren::datasets::by_name(scene.dataset, scene.dims);
  const volren::BrickLayout layout = layout_for(volume, scene);
  const lod::OccupancyIndex occupancy(volume, layout,
                                      ZfpStyleCodec::kCellVoxels);
  ASSERT_TRUE(occupancy.exact());
  const ZfpStyleCodec zfp;
  const CompressionPlan scanned = analyze(volume, layout, zfp);
  const CompressionPlan thumbed = analyze(volume, layout, zfp, &occupancy);
  ASSERT_EQ(scanned.bricks.size(), thumbed.bricks.size());
  for (std::size_t i = 0; i < scanned.bricks.size(); ++i) {
    EXPECT_LE(thumbed.bricks[i].stored_bytes, thumbed.bricks[i].logical_bytes)
        << "brick " << i;
    const double a = static_cast<double>(scanned.bricks[i].stored_bytes);
    const double b = static_cast<double>(thumbed.bricks[i].stored_bytes);
    EXPECT_NEAR(a, b, 0.35 * std::max(a, b)) << "brick " << i;
  }
  // The sparse shock shell really compresses under both models.
  EXPECT_LT(scanned.stored_total, scanned.logical_total);
  EXPECT_LT(thumbed.stored_total, thumbed.logical_total);
  EXPECT_GT(thumbed.ratio(), 1.0);
}

TEST(BrickCodec, NoiseVolumeNeverUnderflowsByteBudgets) {
  // Adversarial payload: full-range hash noise compresses at ~1.0x.
  // Both codecs must clamp stored <= logical per brick — a stored size
  // above logical would make byte budgets computed on logical sizes
  // admit more than they hold.
  const Scene scene{"noise", {24, 24, 24}, 4, 8};
  const volren::Volume volume = noise_volume(scene.dims);
  const volren::BrickLayout layout = layout_for(volume, scene);
  const RleCodec rle;
  const ZfpStyleCodec zfp;
  for (const BrickCodec* codec :
       std::vector<const BrickCodec*>{&rle, &zfp}) {
    const CompressionPlan plan = analyze(volume, layout, *codec);
    for (const BrickCompression& bc : plan.bricks) {
      EXPECT_LE(bc.stored_bytes, bc.logical_bytes) << codec->name();
    }
    EXPECT_LE(plan.stored_total, plan.logical_total) << codec->name();
    EXPECT_GE(plan.ratio(), 1.0) << codec->name();
  }
  // RLE on pure noise falls back to the raw stream — and still
  // round-trips bit-exactly.
  const volren::BrickInfo& info = layout.bricks().front();
  const std::vector<float> voxels =
      volume.materialize(info.padded_origin, info.padded_dims);
  const std::vector<std::uint8_t> stream = rle.encode(voxels);
  EXPECT_EQ(stream.size(), voxels.size() * sizeof(float));
  EXPECT_TRUE(bit_identical(voxels, rle.decode(stream, voxels.size())));
}

}  // namespace
}  // namespace vrmr::compress
