// BrickCache unit tests: LRU eviction order, byte-budget enforcement,
// hit/miss accounting, per-GPU sharding and cross-volume isolation.

#include "service/brick_cache.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace vrmr::service {
namespace {

TEST(BrickCache, MissThenHit) {
  BrickCache cache(1, 1000);
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 0}, 100));  // cold: admitted
  EXPECT_TRUE(cache.lookup_or_admit(0, {1, 0}, 100));   // warm
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().bytes_saved, 100u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  EXPECT_EQ(cache.resident_bytes(0), 100u);
  EXPECT_EQ(cache.resident_bricks(0), 1u);
}

TEST(BrickCache, EvictsLeastRecentlyUsed) {
  BrickCache cache(1, 100);
  cache.lookup_or_admit(0, {1, 0}, 40);
  cache.lookup_or_admit(0, {1, 1}, 40);
  // Touch brick 0 so brick 1 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup_or_admit(0, {1, 0}, 40));
  cache.lookup_or_admit(0, {1, 2}, 40);  // needs an eviction
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_FALSE(cache.resident(0, {1, 1}));
  EXPECT_TRUE(cache.resident(0, {1, 2}));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes_evicted, 40u);
}

TEST(BrickCache, NeverExceedsCapacity) {
  BrickCache cache(1, 100);
  for (int b = 0; b < 20; ++b) {
    cache.lookup_or_admit(0, {1, b}, 30);
    EXPECT_LE(cache.resident_bytes(0), 100u);
  }
  EXPECT_EQ(cache.resident_bricks(0), 3u);  // 3 x 30 <= 100 < 4 x 30
}

TEST(BrickCache, OversizedBrickIsRejectedWithoutEvicting) {
  BrickCache cache(1, 100);
  cache.lookup_or_admit(0, {1, 0}, 60);
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 99}, 200));  // larger than budget
  EXPECT_FALSE(cache.resident(0, {1, 99}));
  EXPECT_TRUE(cache.resident(0, {1, 0}));  // nothing was displaced
  EXPECT_EQ(cache.stats().rejected_oversized, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(BrickCache, GpuShardsAreIndependent) {
  BrickCache cache(2, 100);
  cache.lookup_or_admit(0, {1, 0}, 50);
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_FALSE(cache.resident(1, {1, 0}));
  EXPECT_EQ(cache.resident_bytes(1), 0u);
  // The same brick admitted on the other GPU is a miss there.
  EXPECT_FALSE(cache.lookup_or_admit(1, {1, 0}, 50));
}

TEST(BrickCache, VolumesDoNotAliasOnBrickId) {
  // Two sessions rendering different volumes produce the same brick
  // ids; the volume id keeps their residency isolated.
  BrickCache cache(1, 1000);
  cache.lookup_or_admit(0, {/*volume_id=*/1, 0}, 100);
  EXPECT_FALSE(cache.resident(0, {2, 0}));
  EXPECT_FALSE(cache.lookup_or_admit(0, {2, 0}, 100));  // distinct entry
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_TRUE(cache.resident(0, {2, 0}));
  EXPECT_EQ(cache.resident_bricks(0), 2u);
}

TEST(BrickCache, InvalidateVolumeDropsAllItsBricksEverywhere) {
  BrickCache cache(2, 1000);
  cache.lookup_or_admit(0, {1, 0}, 100);
  cache.lookup_or_admit(0, {2, 0}, 100);
  cache.lookup_or_admit(1, {1, 1}, 100);
  cache.invalidate_volume(1);
  EXPECT_FALSE(cache.resident(0, {1, 0}));
  EXPECT_FALSE(cache.resident(1, {1, 1}));
  EXPECT_TRUE(cache.resident(0, {2, 0}));
  EXPECT_EQ(cache.resident_bytes(0), 100u);
  EXPECT_EQ(cache.resident_bytes(1), 0u);
}

TEST(BrickCache, ClearEmptiesEveryShard) {
  BrickCache cache(2, 1000);
  cache.lookup_or_admit(0, {1, 0}, 100);
  cache.lookup_or_admit(1, {1, 1}, 100);
  cache.clear();
  EXPECT_EQ(cache.resident_bytes(0), 0u);
  EXPECT_EQ(cache.resident_bytes(1), 0u);
  EXPECT_FALSE(cache.resident(0, {1, 0}));
}

TEST(BrickCache, CapacityForLeavesReserve) {
  gpusim::DeviceProps props;
  props.vram_bytes = 4ull << 30;
  EXPECT_EQ(BrickCache::capacity_for(props, 1ull << 30), 3ull << 30);
  // Reserve swallowing the whole device leaves a zero-budget cache.
  EXPECT_EQ(BrickCache::capacity_for(props, 8ull << 30), 0u);
}

TEST(BrickCache, RejectsBadGpuIndex) {
  BrickCache cache(1, 100);
  EXPECT_THROW(cache.lookup_or_admit(1, {1, 0}, 10), vrmr::CheckError);
  EXPECT_THROW((void)cache.resident(-1, {1, 0}), vrmr::CheckError);
}

}  // namespace
}  // namespace vrmr::service
