// Fault tolerance: deterministic injection (src/fault) through the
// serving stack. Quantum-level disk-read retry with exponential lane
// backoff, lane stall / lane death recovery, whole-shard crash
// snapshots, frontend failover with warm brick pre-push, pin_shard
// idempotence, and hydration surviving injected fabric drops. The
// recurring invariant: every accepted frame is delivered exactly once
// with pixels bit-identical to the fault-free run.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "service/frontend.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

RenderRequest request_for(const volren::Volume& volume, double arrival) {
  RenderRequest r;
  r.volume = &volume;
  r.options = tiny_options();
  r.arrival_s = arrival;
  return r;
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

ServiceConfig image_keeping_config() {
  ServiceConfig config;
  config.keep_images = true;
  return config;
}

/// Renders `frames` orbit frames fault-free and returns the records.
std::vector<FrameRecord> clean_run(const volren::Volume& volume, int frames,
                                   int gpus = 2) {
  Harness h(gpus, image_keeping_config());
  Session s = h.service->open_session("clean");
  s.submit_orbit(volume, tiny_options(), frames, 0.0, 0.0);
  h.service->drain();
  return h.service->stats().frames;
}

void expect_identical_images(const std::vector<FrameRecord>& a,
                             const std::vector<FrameRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    const volren::ImageDiff diff =
        volren::compare_images(a[f].image, b[f].image);
    EXPECT_EQ(diff.max_abs, 0.0) << "frame " << f << " diverged";
  }
}

TEST(FaultTolerance, DiskReadErrorRetriesAndMatchesCleanPixels) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const std::vector<FrameRecord> clean = clean_run(volume, 2);

  Harness h(2, image_keeping_config());
  fault::FaultEvent fault;
  fault.kind = fault::FaultKind::DiskReadError;
  fault.time_s = 0.0;  // the first staged quantum fails
  h.service->inject_fault(fault);
  Session s = h.service->open_session("faulted");
  s.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.frames_total, 2);
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_GE(stats.quanta_retried, 1u);
  expect_identical_images(stats.frames, clean);
  // The detection timeout and retry are in the schedule: the faulted
  // run cannot be faster than the clean one.
  EXPECT_GE(stats.frames.back().finish_s, clean.back().finish_s);
}

TEST(FaultTolerance, RepeatedDiskErrorsBackOffExponentially) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config = image_keeping_config();
  config.retry_backoff_s = 1e-3;
  Harness h(2, config);
  // Three consecutive failures of the same lane's quanta: each retry
  // waits retry_backoff_s x 2^(attempt-1) before the lane refills.
  for (int i = 0; i < 3; ++i) {
    fault::FaultEvent fault;
    fault.kind = fault::FaultKind::DiskReadError;
    fault.time_s = 0.0;
    h.service->inject_fault(fault);
  }
  Session s = h.service->open_session("stubborn");
  s.submit_orbit(volume, tiny_options(), 1, 0.0, 0.0);
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.frames_total, 1);
  EXPECT_EQ(stats.faults_injected, 3u);
  EXPECT_GE(stats.quanta_retried, 3u);
  expect_identical_images(stats.frames, clean_run(volume, 1));
}

TEST(FaultTolerance, LaneStallDelaysButLosesNothing) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const std::vector<FrameRecord> clean = clean_run(volume, 2);

  Harness h(2, image_keeping_config());
  fault::FaultEvent stall;
  stall.kind = fault::FaultKind::LaneStall;
  stall.time_s = 0.0;
  stall.target = 0;
  stall.param_s = 0.05;  // well above the tiny frames' service time
  h.service->inject_fault(stall);
  Session s = h.service->open_session("stalled");
  s.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.frames_total, 2);
  EXPECT_EQ(stats.lane_stalls, 1u);
  EXPECT_EQ(stats.lanes_dead, 0u);
  expect_identical_images(stats.frames, clean);
  EXPECT_GT(stats.makespan_s, clean.back().finish_s - clean.front().arrival_s);
}

TEST(FaultTolerance, LaneDeathRedistributesAndMatchesCleanPixels) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const std::vector<FrameRecord> clean = clean_run(volume, 3, 4);
  const double mid = clean.back().finish_s * 0.4;  // mid-drain

  Harness h(4, image_keeping_config());
  fault::FaultEvent death;
  death.kind = fault::FaultKind::LaneDeath;
  death.time_s = mid;
  death.target = 1;
  h.service->inject_fault(death);
  Session s = h.service->open_session("survivor");
  s.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.frames_total, 3);
  EXPECT_EQ(h.service->dead_lanes(), 1);
  EXPECT_EQ(stats.lanes_dead, 1u);
  // Reduced parallelism, identical pixels (placement-independent
  // reduction): the blacklisted lane's quanta ran elsewhere.
  expect_identical_images(stats.frames, clean);
}

TEST(FaultTolerance, LaneDeathBeforeAdmissionServesOnSurvivors) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2, image_keeping_config());
  fault::FaultEvent death;
  death.kind = fault::FaultKind::LaneDeath;
  death.time_s = 0.0;
  death.target = 0;
  h.service->inject_fault(death);
  Session s = h.service->open_session("half");
  s.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.frames_total, 2);
  EXPECT_EQ(h.service->dead_lanes(), 1);
  expect_identical_images(stats.frames, clean_run(volume, 2));
}

TEST(FaultTolerance, ShardCrashSnapshotsUndeliveredWork) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const std::vector<FrameRecord> clean = clean_run(volume, 4);
  const double mid = clean.back().finish_s * 0.5;

  Harness h(2, image_keeping_config());
  fault::FaultEvent crash;
  crash.kind = fault::FaultKind::ShardCrash;
  crash.time_s = mid;
  h.service->inject_fault(crash);
  Session s = h.service->open_session("doomed");
  s.submit_orbit(volume, tiny_options(), 4, 0.0, 0.0);
  h.service->drain();  // returns instead of wedging

  EXPECT_TRUE(h.service->crashed());
  const ServiceStats stats = h.service->stats();
  const auto& unserved = h.service->unserved_frames();
  // Every submitted frame is accounted for exactly once: delivered
  // before the crash or snapshotted for failover.
  EXPECT_EQ(stats.frames_total + static_cast<int>(unserved.size()), 4);
  EXPECT_GT(unserved.size(), 0u);
  for (std::size_t i = 1; i < unserved.size(); ++i)
    EXPECT_LT(unserved[i - 1].frame_id, unserved[i].frame_id);
  for (const auto& frame : unserved) {
    EXPECT_NE(frame.request.volume, nullptr);
    EXPECT_NE(frame.layout, nullptr);
  }
  // A crashed service refuses new work silently: no delivery after.
  s.submit(request_for(volume, mid));
  h.service->drain();
  EXPECT_EQ(h.service->stats().frames_total, stats.frames_total);
}

TEST(FaultTolerance, FrontendFailoverDeliversEveryFrameBitIdentically) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const int kFrames = 4;

  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;

  // Fault-free reference: same pinned placement, no plan.
  std::vector<volren::Image> clean_images;
  double clean_makespan = 0.0;
  {
    ServiceFrontend frontend(config);
    Session s = frontend.open_session("victim");
    frontend.pin_shard(s, 0);
    s.on_frame([&clean_images](const FrameRecord& f) {
      clean_images.push_back(f.image);
    });
    s.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
    frontend.drain();
    clean_makespan = frontend.stats().makespan_s;
  }
  ASSERT_EQ(clean_images.size(), static_cast<std::size_t>(kFrames));

  // Faulted run: shard 0 crashes mid-drain; the frontend re-pins the
  // session onto shard 1, pre-pushes shard 0's warm bricks, and
  // re-issues the snapshot. Delivery: every frame exactly once, k-th
  // delivered image bit-identical to the fault-free k-th (per-session
  // submission order survives the re-issue).
  ServiceFrontend frontend(config);
  fault::FaultPlan plan(42);
  plan.add({fault::FaultKind::ShardCrash, clean_makespan * 0.5, 0, -1});
  frontend.install_fault_plan(plan);
  Session s = frontend.open_session("victim");
  frontend.pin_shard(s, 0);
  std::vector<volren::Image> images;
  s.on_frame([&images](const FrameRecord& f) { images.push_back(f.image); });
  s.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
  frontend.drain();

  ASSERT_EQ(images.size(), static_cast<std::size_t>(kFrames));  // zero lost
  for (int f = 0; f < kFrames; ++f) {
    const volren::ImageDiff diff =
        volren::compare_images(images[static_cast<std::size_t>(f)],
                               clean_images[static_cast<std::size_t>(f)]);
    EXPECT_EQ(diff.max_abs, 0.0) << "frame " << f << " diverged";
  }
  const FrontendStats stats = frontend.stats();
  EXPECT_TRUE(frontend.shard(0).crashed());
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.sessions_repinned, 1u);
  EXPECT_GT(stats.frames_reissued, 0u);
  EXPECT_EQ(frontend.shard_of(s), 1);
  // Warm handoff: the crash landed after at least one frame rendered,
  // so the crashed cache had residents to push.
  EXPECT_GT(stats.bricks_prepushed, 0u);
  EXPECT_GT(stats.bytes_prepushed, 0u);
}

TEST(FaultTolerance, FailoverReplayIsDeterministic) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const auto run = [&volume] {
    FrontendConfig config;
    config.shards = 2;
    config.gpus_per_shard = 2;
    config.service.keep_images = true;
    ServiceFrontend frontend(config);
    fault::FaultPlan plan(7);
    plan.add({fault::FaultKind::ShardCrash, 0.002, 0, -1})
        .add({fault::FaultKind::DiskReadError, 0.0, 1, -1});
    frontend.install_fault_plan(plan);
    Session s = frontend.open_session("replay");
    frontend.pin_shard(s, 0);
    std::vector<volren::Image> images;
    s.on_frame([&images](const FrameRecord& f) { images.push_back(f.image); });
    s.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
    frontend.drain();
    return std::pair<std::vector<volren::Image>, double>(
        std::move(images), frontend.stats().makespan_s);
  };
  const auto a = run();
  const auto b = run();
  // Bit-identical replay: same plan + same workload => same schedule.
  EXPECT_EQ(a.second, b.second);
  ASSERT_EQ(a.first.size(), b.first.size());
  ASSERT_EQ(a.first.size(), 3u);
  for (std::size_t f = 0; f < a.first.size(); ++f)
    EXPECT_EQ(volren::compare_images(a.first[f], b.first[f]).max_abs, 0.0);
}

TEST(FaultTolerance, PinShardIsIdempotentAndRangeValidated) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  ServiceFrontend frontend(config);
  Session s = frontend.open_session("pinned");
  EXPECT_THROW(frontend.pin_shard(s, -1), CheckError);
  EXPECT_THROW(frontend.pin_shard(s, 2), CheckError);
  frontend.pin_shard(s, 1);
  frontend.pin_shard(s, 1);  // repeated pre-placement pin: no-op
  frontend.pin_shard(s, 0);  // unplaced sessions may still re-target
  frontend.pin_shard(s, 1);
  s.submit(request_for(volume, 0.0));
  ASSERT_EQ(frontend.shard_of(s), 1);
  // Placed: same-shard pin is a no-op, moving is an error — the
  // session's frames and residency live on shard 1.
  EXPECT_NO_THROW(frontend.pin_shard(s, 1));
  EXPECT_THROW(frontend.pin_shard(s, 0), CheckError);
  EXPECT_EQ(frontend.shard_of(s), 1);
  frontend.drain();
  EXPECT_EQ(s.stats().frames, 1);
}

TEST(FaultTolerance, PinToCrashedShardFallsBackToSurvivors) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  ServiceFrontend frontend(config);
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::ShardCrash, 0.0, 0, -1});
  frontend.install_fault_plan(plan);
  // The crash event lives on shard 0's engine and fires the moment the
  // shard drains. A pre-crash pinned session lands there, the shard
  // crashes before serving it, and failover re-issues its frame.
  Session early = frontend.open_session("early");
  frontend.pin_shard(early, 0);
  early.submit(request_for(volume, 0.0));
  frontend.drain();
  ASSERT_TRUE(frontend.shard(0).crashed());
  EXPECT_EQ(frontend.shard_of(early), 1);  // failed over
  EXPECT_EQ(early.stats().frames, 1);      // still delivered
  // A NEW session pinned to the now-crashed shard is redirected to the
  // placement policy at first submit instead of queueing on a corpse.
  Session redirected = frontend.open_session("redirected");
  frontend.pin_shard(redirected, 0);
  redirected.submit(request_for(volume, 0.0));
  EXPECT_EQ(frontend.shard_of(redirected), 1);
  frontend.drain();
  EXPECT_EQ(redirected.stats().frames, 1);
}

TEST(FaultTolerance, HydrationSurvivesInjectedFabricDrop) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.enable_peer_hydration = true;
  ServiceFrontend frontend(config);
  // Drop the first message INTO shard 1 — the hydration payload. The
  // reliable send must retransmit; without it the render plan would
  // wait forever on a delivery that never comes.
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::FabricDrop, 0.0, 1, -1});
  frontend.install_fault_plan(plan);

  // Warm the volume on shard 0.
  Session seeder = frontend.open_session("seeder");
  frontend.pin_shard(seeder, 0);
  seeder.submit(request_for(volume, 0.0));
  frontend.drain();
  ASSERT_TRUE(frontend.shard(0).volume_warm(&volume));

  // A session pinned to cold shard 1 hydrates from shard 0 despite the
  // dropped payload.
  Session cold = frontend.open_session("cold");
  frontend.pin_shard(cold, 1);
  cold.submit(request_for(volume, 0.0));
  frontend.drain();
  EXPECT_EQ(cold.stats().frames, 1);
  const FrontendStats stats = frontend.stats();
  EXPECT_GT(stats.bricks_hydrated, 0u);
  EXPECT_GT(stats.bytes_hydrated_from_peers, 0u);
}

}  // namespace
}  // namespace vrmr::service
