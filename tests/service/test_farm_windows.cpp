// Farm-window tests: FrontendStats::windows merges every shard's
// ServiceStats::windows into time-aligned farm bins — counters must
// partition exactly (each farm bin is the sum of the shard bins it
// merged, totals reconcile with the lifetime aggregates), bins stay
// aligned to the shared stats_window_s grid, and utilization is
// re-derived over the farm's capacity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "service/frontend.hpp"
#include "volren/datasets.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

FrontendStats run_farm(double window_s) {
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.stats_window_s = window_s;
  service::ServiceFrontend frontend(config);

  // Distinct volumes so the two sessions place on different shards
  // (least outstanding cost), giving both shards real windows.
  const volren::Volume skull = volren::datasets::skull({24, 24, 24});
  const volren::Volume supernova = volren::datasets::supernova({32, 32, 32});
  Session a = frontend.open_session("a", Priority::Interactive);
  Session b = frontend.open_session("b", Priority::Batch);
  volren::RenderOptions batch_options = tiny_options();
  batch_options.target_bricks = 8;
  a.submit_orbit(skull, tiny_options(), 6, 0.0, 0.001);
  b.submit_orbit(supernova, batch_options, 4, 0.0, 0.0);
  frontend.drain();
  return frontend.stats();
}

TEST(FarmWindows, MergedBinsPartitionTheShardBinsExactly) {
  const double width = 0.002;
  const FrontendStats stats = run_farm(width);
  ASSERT_EQ(stats.shards.size(), 2u);
  ASSERT_GT(stats.windows.size(), 1u) << "expected a multi-window run";
  for (const ShardStats& shard : stats.shards) {
    ASSERT_FALSE(shard.service.windows.empty())
        << "both shards must have served frames";
  }

  // Rebuild the merge by bin index and compare field by field: every
  // shard bin lands in exactly one farm bin, nothing is dropped or
  // double-counted.
  std::map<std::int64_t, ServiceWindow> expected;
  for (const ShardStats& shard : stats.shards) {
    for (const ServiceWindow& w : shard.service.windows) {
      ServiceWindow& m = expected[std::llround(w.start_s / width)];
      m.start_s = w.start_s;
      m.frames_finished += w.frames_finished;
      m.quanta_issued += w.quanta_issued;
      m.preemptions += w.preemptions;
      m.tiles += w.tiles;
      m.gpu_busy_s += w.gpu_busy_s;
    }
  }
  ASSERT_EQ(stats.windows.size(), expected.size());
  auto it = expected.begin();
  double last_start = -std::numeric_limits<double>::infinity();
  for (const ServiceWindow& w : stats.windows) {
    const ServiceWindow& e = it->second;
    EXPECT_DOUBLE_EQ(w.start_s, e.start_s);
    EXPECT_EQ(w.frames_finished, e.frames_finished);
    EXPECT_EQ(w.quanta_issued, e.quanta_issued);
    EXPECT_EQ(w.preemptions, e.preemptions);
    EXPECT_EQ(w.tiles, e.tiles);
    EXPECT_DOUBLE_EQ(w.gpu_busy_s, e.gpu_busy_s);
    // Farm bins are aligned to the shared grid and ascend.
    EXPECT_NEAR(w.start_s, std::llround(w.start_s / width) * width,
                1e-9 * std::max(1.0, std::abs(w.start_s)));
    EXPECT_DOUBLE_EQ(w.window_s, width);
    EXPECT_GT(w.start_s, last_start);
    last_start = w.start_s;
    ++it;
  }

  // Totals reconcile with the farm's lifetime aggregates.
  int frames = 0;
  std::uint64_t tiles = 0;
  for (const ServiceWindow& w : stats.windows) {
    frames += w.frames_finished;
    tiles += w.tiles;
  }
  EXPECT_EQ(frames, stats.frames_total);
  std::uint64_t shard_tiles = 0;
  for (const ShardStats& shard : stats.shards)
    shard_tiles += shard.service.tiles_total;
  EXPECT_EQ(tiles, shard_tiles);
}

TEST(FarmWindows, UtilizationIsOverFarmCapacity) {
  const double width = 0.002;
  const FrontendStats stats = run_farm(width);
  const double capacity = width * 2.0 * 2.0;  // shards x gpus_per_shard
  for (const ServiceWindow& w : stats.windows) {
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.0);
    // Where the clamp is not active the ratio is exact — a farm bin
    // never reports a single shard's utilization.
    if (w.gpu_busy_s <= capacity) {
      EXPECT_DOUBLE_EQ(w.utilization, w.gpu_busy_s / capacity);
    }
  }
}

TEST(FarmWindows, DisabledTrackingYieldsNoFarmWindows) {
  const FrontendStats stats = run_farm(0.0);
  EXPECT_TRUE(stats.windows.empty());
  for (const ShardStats& shard : stats.shards) {
    EXPECT_TRUE(shard.service.windows.empty());
  }
}

}  // namespace
}  // namespace vrmr::service
