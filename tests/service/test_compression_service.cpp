// Compressed serving end-to-end: pixels are bit-identical with
// compression on or off (the codec changes sizes and times, never
// values), hits pay their decompress quantum every frame, the cache's
// logical/stored counters reconcile under ARC churn + prefetch, and
// peer hydration serves a cold shard's misses from a warm sibling —
// falling back to disk when no sibling holds the brick.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "compress/brick_codec.hpp"
#include "service/brick_cache.hpp"
#include "service/frontend.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

ServiceStats run_orbit(const volren::Volume& volume, compress::Codec codec,
                       int frames = 3) {
  ServiceConfig config;
  config.compression = codec;
  config.keep_images = true;
  Harness h(2, config);
  Session s = h.service->open_session("orbit");
  s.submit_orbit(volume, tiny_options(), frames, 0.0, 0.0);
  h.service->drain();
  return h.service->stats();
}

TEST(CompressionService, PixelsBitIdenticalWithCompressionOnOrOff) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const ServiceStats off = run_orbit(volume, compress::Codec::None);
  for (const compress::Codec codec :
       {compress::Codec::Rle, compress::Codec::ZfpStyle}) {
    const ServiceStats on = run_orbit(volume, codec);
    ASSERT_EQ(off.frames.size(), on.frames.size()) << to_string(codec);
    for (std::size_t f = 0; f < off.frames.size(); ++f) {
      const volren::ImageDiff diff =
          volren::compare_images(off.frames[f].image, on.frames[f].image);
      EXPECT_EQ(diff.max_abs, 0.0) << to_string(codec) << " frame " << f;
    }
  }
}

TEST(CompressionService, HitsPayTheDecompressQuantumEveryFrame) {
  // The cache holds COMPRESSED payloads, so a hit skips disk and H2D
  // but still expands before its map kernel: chunks_decompressed grows
  // every frame, not just on the cold one — and the warm frames are
  // where the stored-byte H2D savings show up. The plume's uniform
  // column-and-background structure gives real RLE runs (the skull and
  // supernova proxies are continuous fields that fall back to raw).
  const volren::Volume volume = volren::datasets::plume({24, 24, 24});
  const ServiceStats stats = run_orbit(volume, compress::Codec::Rle, 3);
  ASSERT_EQ(stats.frames.size(), 3u);
  const std::uint64_t bricks = stats.frames[0].cache_misses;
  ASSERT_GT(bricks, 0u);
  for (const FrameRecord& frame : stats.frames) {
    // Every brick this frame touched — resident or freshly staged —
    // expanded exactly once.
    EXPECT_EQ(frame.stats.chunks_decompressed,
              frame.cache_hits + frame.cache_misses);
    EXPECT_GT(frame.stats.decompress_s_total, 0.0);
  }
  // Warm frames hit everything; the skipped H2D is the stored size.
  EXPECT_EQ(stats.frames[1].cache_hits, bricks);
  EXPECT_GT(stats.frames[1].stats.bytes_h2d_saved, 0u);
  // The plume's flat regions really compress: the cache admitted more
  // logical bytes than stored bytes (the residency multiplier).
  EXPECT_GT(stats.cache.logical_bytes_admitted,
            stats.cache.stored_bytes_admitted);
  EXPECT_GT(stats.chunks_decompressed, 0u);
  EXPECT_GT(stats.decompress_s_total, 0.0);
}

TEST(CompressionService, CacheReconcilesLogicalAndStoredUnderArcChurn) {
  // Direct cache drill: ARC shard with room for ~3 stored payloads,
  // mixed demand admissions and prefetches whose logical size is 4x
  // stored, enough distinct keys to churn evictions and ghost hits.
  // Invariant: logical_admitted - logical_evicted == resident logical
  // bytes, and the same identity holds for stored bytes — under any
  // interleaving of admissions, evictions and prefetch.
  BrickCache cache(1, 3000, CachePolicy::Arc);
  const std::uint64_t stored = 1000;
  const std::uint64_t logical = 4000;
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 8; ++k) {
      const BrickKey key{1, k, 7};
      if (k % 3 == 0) {
        bool admitted = false;
        cache.prefetch(0, key, stored, &admitted, logical);
      } else {
        cache.lookup_or_admit(0, key, stored, nullptr, logical);
      }
    }
  }
  const BrickCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);  // the churn actually churned
  EXPECT_GT(stats.prefetch_admissions, 0u);
  EXPECT_EQ(stats.logical_bytes_admitted - stats.logical_bytes_evicted,
            cache.resident_logical_bytes(0));
  EXPECT_EQ(stats.stored_bytes_admitted - stats.bytes_evicted,
            cache.resident_bytes(0));
  // Uniform 4x payloads: the aggregate multiplier is exact.
  EXPECT_EQ(stats.logical_bytes_admitted, 4 * stats.stored_bytes_admitted);
  EXPECT_EQ(cache.resident_logical_bytes(0), 4 * cache.resident_bytes(0));

  // invalidate_volume withdraws without counting evictions: resident
  // drops to zero, the evicted counters do not move.
  const std::uint64_t evicted_before = stats.logical_bytes_evicted;
  cache.invalidate_volume(1);
  EXPECT_EQ(cache.resident_logical_bytes(0), 0u);
  EXPECT_EQ(cache.stats().logical_bytes_evicted, evicted_before);
}

TEST(CompressionService, PeerHydrationServesColdShardFromWarmSibling) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.enable_peer_hydration = true;
  config.service.compression = compress::Codec::Rle;
  ServiceFrontend frontend(config);

  // Warm shard 0 with the volume, then drain so its bricks are resident
  // before the cold shard's frames plan their staging.
  SessionProfile warm_profile;
  warm_profile.name = "warm";
  warm_profile.pin_shard = 0;
  Session warm = frontend.open_session(warm_profile);
  warm.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  frontend.drain();

  SessionProfile cold_profile;
  cold_profile.name = "cold";
  cold_profile.pin_shard = 1;
  Session cold = frontend.open_session(cold_profile);
  cold.submit_orbit(volume, tiny_options(), 1, 0.0, 0.0);
  frontend.drain();

  EXPECT_EQ(frontend.shard_of(warm), 0);
  EXPECT_EQ(frontend.shard_of(cold), 1);
  const FrontendStats stats = frontend.stats();
  // Every one of the cold shard's misses hydrated from shard 0.
  EXPECT_GT(stats.bricks_hydrated, 0u);
  EXPECT_GT(stats.bytes_hydrated_from_peers, 0u);
  EXPECT_EQ(stats.bytes_hydrated_from_peers, stats.bytes_disk_avoided);
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.shards[0].bricks_hydrated, 0u);  // the warm side probes no one
  EXPECT_GT(stats.shards[1].bricks_hydrated, 0u);
  EXPECT_EQ(stats.shards[1].service.chunks_hydrated,
            stats.shards[1].bricks_hydrated);
  EXPECT_EQ(stats.shards[1].service.bytes_hydrated,
            stats.shards[1].bytes_hydrated_from_peers);
}

TEST(CompressionService, PeerHydrationFallsBackToDiskWhenNoSiblingIsWarm) {
  // Same topology, but nobody warmed the volume: every probe returns
  // cold, hydration counts stay zero, and the frames complete through
  // the ordinary disk/H2D path.
  const volren::Volume volume = volren::datasets::supernova({24, 24, 24});
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.enable_peer_hydration = true;
  ServiceFrontend frontend(config);
  SessionProfile profile;
  profile.name = "cold";
  profile.pin_shard = 1;
  Session session = frontend.open_session(profile);
  session.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  frontend.drain();
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.frames_total, 2);
  EXPECT_EQ(stats.bricks_hydrated, 0u);
  EXPECT_EQ(stats.bytes_hydrated_from_peers, 0u);
}

TEST(CompressionService, PinShardOverridesPlacementAndRejectsBadIndices) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  ServiceFrontend frontend(config);
  // Placement would pick idle shard 0 (lowest index, no load); the pin
  // forces shard 1 anyway.
  SessionProfile profile;
  profile.name = "pinned";
  profile.pin_shard = 1;
  Session session = frontend.open_session(profile);
  RenderRequest request;
  request.volume = &volume;
  request.options = tiny_options();
  session.submit(request);
  frontend.drain();
  EXPECT_EQ(frontend.shard_of(session), 1);

  SessionProfile bad;
  bad.name = "bad";
  bad.pin_shard = 2;
  EXPECT_THROW(frontend.open_session(bad), vrmr::CheckError);
}

}  // namespace
}  // namespace vrmr::service
