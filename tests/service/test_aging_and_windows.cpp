// Scheduling-extras tests: batch aging under a sustained interactive
// burst (bounded batch tail latency where strict priority starves),
// windowed service stats (per-simulated-second counters partitioning
// the lifetime aggregates), prefetch telemetry reconciling exactly
// between the service and cache layers, and the service-level effect
// of per-reducer barrier chaining on time-to-first-tile.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

RenderRequest request_for(const volren::Volume& volume, double arrival,
                          volren::RenderOptions options = tiny_options()) {
  RenderRequest r;
  r.volume = &volume;
  r.options = options;
  r.arrival_s = arrival;
  return r;
}

TEST(BatchAging, BoundsBatchLatencyUnderSustainedInteractiveBurst) {
  // 40 interactive frames all arrived at t=0 form a sustained burst;
  // one batch frame arrives alongside them. Under strict priority
  // (aging off) the batch frame starves until the whole burst drains;
  // with aging it is admitted once it has waited batch_aging_s and
  // completes mid-burst (its quanta fill the lanes the interactive
  // frames leave idle during their reduce tails).
  const volren::Volume live_volume = volren::datasets::skull({24, 24, 24});
  const volren::Volume batch_volume = volren::datasets::supernova({24, 24, 24});
  constexpr int kBurst = 40;
  constexpr double kAging = 0.0008;

  auto run = [&](double aging_s) {
    ServiceConfig config;
    config.batch_aging_s = aging_s;
    Harness h(2, config);
    Session live = h.service->open_session("live", Priority::Interactive);
    Session batch = h.service->open_session("batch", Priority::Batch);
    live.submit_orbit(live_volume, tiny_options(), kBurst, 0.0, 0.0);
    volren::RenderOptions batch_options = tiny_options();
    batch_options.target_bricks = 8;
    batch.submit(request_for(batch_volume, 0.0, batch_options));
    h.service->drain();
    return h.service->stats();
  };

  const ServiceStats strict = run(0.0);
  const ServiceStats aged = run(kAging);

  auto batch_record = [](const ServiceStats& stats) -> const FrameRecord& {
    for (const FrameRecord& f : stats.frames) {
      if (f.session == 1) return f;
    }
    ADD_FAILURE() << "batch frame not served";
    return stats.frames.front();
  };
  auto last_interactive_finish = [](const ServiceStats& stats) {
    double last = 0.0;
    for (const FrameRecord& f : stats.frames) {
      if (f.session == 0) last = std::max(last, f.finish_s);
    }
    return last;
  };

  // Strict priority: the batch frame waited out the entire burst (it
  // is admitted at the burst's final completion event).
  EXPECT_GE(batch_record(strict).start_s, last_interactive_finish(strict));
  // Aging: the batch frame was admitted once aged — it starts (and
  // finishes) well inside the burst instead of after it.
  EXPECT_LT(batch_record(aged).start_s, last_interactive_finish(aged));
  EXPECT_LT(batch_record(aged).finish_s, last_interactive_finish(aged));
  // The tail-latency bound this buys is large: the aged batch frame's
  // queue wait is a small fraction of the starved one's.
  EXPECT_LT(batch_record(aged).queue_wait_s(),
            batch_record(strict).queue_wait_s() / 4.0);
  // Work conservation: both runs served everything.
  EXPECT_EQ(strict.frames_total, kBurst + 1);
  EXPECT_EQ(aged.frames_total, kBurst + 1);
}

TEST(WindowedStats, WindowsPartitionTheLifetimeAggregates) {
  const volren::Volume batch_volume = volren::datasets::supernova({32, 32, 32});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.stats_window_s = 0.005;  // several windows across the run
  Harness h(2, config);
  Session batch = h.service->open_session("batch", Priority::Batch);
  Session live = h.service->open_session("live", Priority::Interactive);
  volren::RenderOptions batch_options = tiny_options();
  batch_options.target_bricks = 16;
  for (int f = 0; f < 6; ++f)
    batch.submit(request_for(batch_volume, 0.0, batch_options));
  live.submit_orbit(live_volume, tiny_options(), 6, 0.0005, 0.001);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  ASSERT_GT(stats.windows.size(), 1u) << "expected a multi-window run";

  int frames = 0;
  std::uint64_t quanta = 0, preemptions = 0, tiles = 0;
  double busy = 0.0;
  double last_start = -std::numeric_limits<double>::infinity();
  for (const ServiceWindow& w : stats.windows) {
    EXPECT_GT(w.start_s, last_start) << "windows must ascend";
    last_start = w.start_s;
    EXPECT_DOUBLE_EQ(w.window_s, config.stats_window_s);
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.0);
    frames += w.frames_finished;
    quanta += w.quanta_issued;
    preemptions += w.preemptions;
    tiles += w.tiles;
    busy += w.gpu_busy_s;
  }
  // The windows partition the lifetime aggregates exactly.
  EXPECT_EQ(frames, stats.frames_total);
  EXPECT_EQ(preemptions, stats.preemptions);
  EXPECT_EQ(tiles, stats.tiles_total);
  // Every brick staged through the scheduler is a counted quantum.
  std::uint64_t chunks = 0;
  for (const FrameRecord& f : stats.frames)
    chunks += static_cast<std::uint64_t>(f.stats.num_chunks);
  EXPECT_EQ(quanta, chunks);
  // Attributed busy matches the run's GPU busy (same integral, just
  // binned), which also anchors per-window utilization.
  EXPECT_NEAR(busy, stats.cluster_utilization * stats.makespan_s *
                        h.cluster->total_gpus(),
              1e-9);
  EXPECT_GT(preemptions, 0u);  // the scenario really interleaved

  // Tracking disabled: no windows materialize.
  ServiceConfig off = config;
  off.stats_window_s = 0.0;
  Harness h2(2, off);
  Session s2 = h2.service->open_session("s");
  s2.submit(request_for(live_volume, 0.0));
  h2.service->drain();
  EXPECT_TRUE(h2.service->stats().windows.empty());
}

TEST(BatchAging, DeepPreAgedBacklogCannotInvertPriority) {
  // Regression: every head of a deep batch backlog submitted at t=0 is
  // "pre-aged" by the time it reaches the queue front (it waited
  // behind its own siblings), so without the one-admission-per-period
  // rate limit the aged-head override won every pick and interactive
  // frames waited behind the ENTIRE backlog — strictly worse than
  // aging disabled. Monolithic pipeline makes the inversion fully
  // visible (no lane yielding). With the rate limit, batch trickles
  // through at one frame per aging period and interactive frames
  // interleave throughout.
  const volren::Volume batch_volume = volren::datasets::supernova({24, 24, 24});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  constexpr int kBacklog = 10;

  ServiceConfig config;
  config.pipeline = PipelineMode::Monolithic;
  config.batch_aging_s = 0.002;
  Harness h(2, config);
  Session batch = h.service->open_session("batch", Priority::Batch);
  Session live = h.service->open_session("live", Priority::Interactive);
  for (int f = 0; f < kBacklog; ++f)
    batch.submit(request_for(batch_volume, 0.0));
  live.submit_orbit(live_volume, tiny_options(), 20, 0.0, 0.0005);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  double first_live_finish = std::numeric_limits<double>::infinity();
  double last_live_finish = 0.0;
  std::vector<double> batch_finishes;
  for (const FrameRecord& f : stats.frames) {
    if (f.session == 1) {
      first_live_finish = std::min(first_live_finish, f.finish_s);
      last_live_finish = std::max(last_live_finish, f.finish_s);
    } else {
      batch_finishes.push_back(f.finish_s);
    }
  }
  ASSERT_EQ(batch_finishes.size(), static_cast<std::size_t>(kBacklog));
  std::sort(batch_finishes.begin(), batch_finishes.end());
  // No inversion: interactive work completes before the backlog's
  // second frame (under the bug all kBacklog batch frames ran first).
  EXPECT_LT(first_live_finish, batch_finishes[1]);
  // And aging still guarantees forward progress for batch: its first
  // frame finishes while interactive pressure is still live.
  const SessionStats live_stats = stats.sessions.at(1);
  EXPECT_EQ(live_stats.frames, 20);
  EXPECT_LT(batch_finishes[0], last_live_finish);
}

TEST(WindowedStats, IdleGapsBetweenBurstsStayEmpty) {
  // Regression: busy was only sampled at frame completions, so a
  // frame rendered after a long idle gap smeared its busy uniformly
  // back across the gap — materializing one bin per window of idle
  // time, each with phantom utilization. A zero-delta sample at frame
  // start closes the gap: no bin inside it holds busy at all.
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.stats_window_s = 0.005;
  Harness h(2, config);
  Session s = h.service->open_session("bursty");
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  const double first_finish = h.service->frames().back().finish_s;
  const double gap_end = first_finish + 0.5;  // ~100 windows of idle
  s.submit(request_for(volume, gap_end));
  h.service->drain();
  const double second_start = h.service->frames().back().start_s;
  ASSERT_GE(second_start, gap_end);

  const ServiceStats stats = h.service->stats();
  for (const ServiceWindow& w : stats.windows) {
    // A bin strictly inside the idle gap must not exist with busy (or
    // counters) attributed to it.
    if (w.start_s > first_finish && w.start_s + w.window_s < second_start) {
      EXPECT_EQ(w.gpu_busy_s, 0.0) << "phantom busy at " << w.start_s;
      EXPECT_EQ(w.quanta_issued, 0u);
      EXPECT_EQ(w.frames_finished, 0);
    }
  }
  // And the sparse map stayed sparse: far fewer bins than the ~100 the
  // smear used to materialize.
  EXPECT_LT(stats.windows.size(), 20u);
}

TEST(WindowedStats, UtilizationStaysBoundedWhenPreemptionSplitsAFrame) {
  // Regression: a long batch frame preempted by a short interactive
  // frame used to compress the batch frame's accumulated busy into the
  // interactive frame's short span at its completion sample, reporting
  // per-window utilization far above 1. Busy must spread over the full
  // inter-sample interval and published utilization stays in [0, 1].
  const volren::Volume batch_volume = volren::datasets::supernova({64, 64, 64});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.stats_window_s = 0.0002;  // fine bins around the preemption
  Harness h(2, config);
  Session batch = h.service->open_session("batch", Priority::Batch);
  Session live = h.service->open_session("live", Priority::Interactive);
  volren::RenderOptions batch_options = tiny_options();
  batch_options.target_bricks = 32;
  batch.submit(request_for(batch_volume, 0.0, batch_options));
  live.submit(request_for(live_volume, 0.0005));  // lands mid-batch-frame
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  EXPECT_GT(stats.preemptions, 0u) << "scenario must actually preempt";
  ASSERT_FALSE(stats.windows.empty());
  double busy = 0.0;
  const double capacity =
      config.stats_window_s * static_cast<double>(h.cluster->total_gpus());
  for (const ServiceWindow& w : stats.windows) {
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.0);
    // Raw attributed busy (the clamp must not be doing the work): the
    // compression bug piled ~8x capacity into one bin; correct
    // spreading keeps every bin near capacity (small slack for busy
    // the simulator charges at an operation's grant).
    EXPECT_LE(w.gpu_busy_s, capacity * 1.5);
    busy += w.gpu_busy_s;
  }
  // Totals still reconcile exactly with the lifetime aggregate.
  EXPECT_NEAR(busy, stats.cluster_utilization * stats.makespan_s *
                        h.cluster->total_gpus(),
              1e-9);
}

TEST(PrefetchTelemetry, ServiceAndCacheLayersReconcileExactly) {
  // The A/B thrash scenario from test_preemption: an orbit-hinted
  // session whose bricks are evicted by a batch scan every other
  // frame, restaged by the overlap-window prefetcher. Service-level
  // prefetch counters must equal the cache layer's admission counters
  // byte for byte.
  const volren::Volume a_volume = volren::datasets::skull({24, 24, 24});
  const volren::Volume b_volume = volren::datasets::supernova({48, 48, 48});
  constexpr int kFramesEach = 4;

  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  const auto a_layout = volren::choose_layout(a_volume, tiny_options(), 2);
  const auto b_layout = volren::choose_layout(b_volume, tiny_options(), 2);
  std::uint64_t a_per_gpu = 0, b_per_gpu = 0;
  for (const volren::BrickInfo& brick : a_layout.bricks())
    if (brick.id % 2 == 0) a_per_gpu += brick.device_bytes();
  for (const volren::BrickInfo& brick : b_layout.bricks())
    if (brick.id % 2 == 0) b_per_gpu += brick.device_bytes();
  config.cache_capacity_override = b_per_gpu + a_per_gpu / 2;

  Harness h(2, config);
  SessionProfile orbiter;
  orbiter.name = "a";
  orbiter.orbit = OrbitHint{kFramesEach, 0.0};
  Session a = h.service->open_session(orbiter);
  Session b = h.service->open_session("b", Priority::Batch);
  a.submit_orbit(a_volume, tiny_options(), kFramesEach, 0.0, 0.0);
  b.submit_orbit(b_volume, tiny_options(), kFramesEach, 0.0, 0.0);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  ASSERT_GT(stats.bricks_prefetched, 0u);
  EXPECT_EQ(stats.bricks_prefetched, stats.cache.prefetch_admissions);
  EXPECT_EQ(stats.bytes_prefetched, stats.cache.bytes_prefetched);
}

TEST(BarrierModes, PerReducerChainingCutsServiceFirstTileLatency) {
  // Served frames under the quantum pipeline default to PerReducer
  // barriers; against a Global-barrier service the first streamed tile
  // lands no later, frames and pixels stay identical.
  const volren::Volume volume = volren::datasets::supernova({32, 32, 32});
  auto run = [&](mr::BarrierMode mode) {
    ServiceConfig config;
    config.barrier_mode = mode;
    config.keep_images = true;
    Harness h(4, config);
    Session s = h.service->open_session("stream");
    volren::RenderOptions options = tiny_options();
    options.partition = mr::PartitionStrategy::Striped;
    options.target_bricks = 8;
    s.submit(request_for(volume, 0.0, options));
    h.service->drain();
    return h.service->stats();
  };

  const ServiceStats global = run(mr::BarrierMode::Global);
  const ServiceStats chained = run(mr::BarrierMode::PerReducer);
  ASSERT_EQ(global.frames.size(), 1u);
  ASSERT_EQ(chained.frames.size(), 1u);
  EXPECT_LE(chained.frames[0].first_tile_s, global.frames[0].first_tile_s);
  EXPECT_LE(chained.frames[0].finish_s, global.frames[0].finish_s);
  EXPECT_EQ(chained.frames[0].tiles, global.frames[0].tiles);
  const volren::ImageDiff diff =
      volren::compare_images(global.frames[0].image, chained.frames[0].image);
  EXPECT_EQ(diff.max_abs, 0.0);
  EXPECT_EQ(chained.frames[0].stats.fragments, global.frames[0].stats.fragments);
}

}  // namespace
}  // namespace vrmr::service
