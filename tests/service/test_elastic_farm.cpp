// Elastic shard farm: voluntary live session migration, the
// steady-state rebalancer, and elastic shard count behind the
// redesigned frontend control plane. The recurring invariants: every
// accepted frame is delivered exactly once with pixels bit-identical
// to an unmigrated run (rendering is placement-independent), retained
// client callbacks survive every move, migration replays are
// byte-identical, and a drained shard retires with zero orphaned
// frames.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "service/frontend.hpp"
#include "service/render_service.hpp"
#include "util/check.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

RenderRequest request_for(const volren::Volume& volume, double arrival) {
  RenderRequest r;
  r.volume = &volume;
  r.options = tiny_options();
  r.arrival_s = arrival;
  return r;
}

FrontendConfig two_shard_config() {
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;
  return config;
}

void expect_identical(const std::vector<volren::Image>& a,
                      const std::vector<volren::Image>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(volren::compare_images(a[f], b[f]).max_abs, 0.0)
        << "frame " << f << " diverged";
  }
}

TEST(ElasticFarm, MigrateSessionMovesQueueAndDeliversBitIdentically) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const int kFrames = 4;

  // Reference: the session serves entirely on shard 0.
  std::vector<volren::Image> clean;
  {
    ServiceFrontend frontend(two_shard_config());
    Session s = frontend.open_session("stay");
    frontend.pin_shard(s, 0);
    s.on_frame([&clean](const FrameRecord& f) { clean.push_back(f.image); });
    s.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
    frontend.drain();
  }
  ASSERT_EQ(clean.size(), static_cast<std::size_t>(kFrames));

  // Migrated: the whole queue moves to shard 1 before a single frame
  // renders; delivery order and pixels must not change.
  ServiceFrontend frontend(two_shard_config());
  Session s = frontend.open_session("mover");
  frontend.pin_shard(s, 0);
  std::vector<volren::Image> images;
  s.on_frame([&images](const FrameRecord& f) { images.push_back(f.image); });
  s.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
  ASSERT_EQ(frontend.shard_of(s), 0);
  frontend.migrate_session(s, 1);
  EXPECT_EQ(frontend.shard_of(s), 1);
  frontend.drain();

  expect_identical(images, clean);
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.frames_migrated, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.frames_reissued, 0u);
  // Counters and served history follow the session across the move.
  EXPECT_EQ(s.stats().frames, kFrames);
  // Shard 0 served nothing; shard 1 served everything.
  EXPECT_EQ(stats.shards[0].service.frames_total, 0);
  EXPECT_EQ(stats.shards[1].service.frames_total, kFrames);
}

TEST(ElasticFarm, MigrationPrepushWarmsTargetAndStatsMergeEpochs) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const auto run = [&volume](bool prepush) {
    FrontendConfig config = two_shard_config();
    config.handoff.migration_prepush = prepush;
    ServiceFrontend frontend(config);
    Session s = frontend.open_session("warm-mover");
    frontend.pin_shard(s, 0);
    // Epoch 1: one frame renders on shard 0 and warms its cache.
    s.submit(request_for(volume, 0.0));
    frontend.drain();
    // Epoch 2: two queued frames migrate; with the handoff enabled the
    // source's warm bricks are pre-pushed to shard 1.
    s.submit(request_for(volume, 0.0));
    s.submit(request_for(volume, 0.0));
    frontend.migrate_session(s, 1);
    frontend.drain();
    return std::pair<FrontendStats, SessionStats>(frontend.stats(), s.stats());
  };

  const auto [warm, warm_session] = run(true);
  EXPECT_GT(warm.bricks_prepushed, 0u);
  EXPECT_GT(warm.bytes_prepushed, 0u);
  EXPECT_EQ(warm.migrations, 1u);
  EXPECT_EQ(warm.frames_migrated, 2u);
  // session_stats merges the epochs: one frame on shard 0, two on 1.
  EXPECT_EQ(warm_session.frames, 3);
  EXPECT_GT(warm_session.tiles_delivered, 0u);

  const auto [cold, cold_session] = run(false);
  EXPECT_EQ(cold.bricks_prepushed, 0u);  // handoff disabled: no push
  EXPECT_EQ(cold_session.frames, 3);     // ...but nothing is lost
}

TEST(ElasticFarm, CallbacksAreRetainedAndFireExactlyOnceAcrossMove) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceFrontend frontend(two_shard_config());
  Session s = frontend.open_session("observed");
  frontend.pin_shard(s, 0);
  int frames_delivered = 0;
  int tiles_delivered = 0;
  int wrong_session = 0;
  s.on_frame([&](const FrameRecord& f) {
    ++frames_delivered;
    if (f.session != 0) ++wrong_session;  // frontend-wide index survives
  });
  s.on_tile([&](const TileRecord& t) {
    ++tiles_delivered;
    if (t.session != 0) ++wrong_session;
  });
  s.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
  frontend.migrate_session(s, 1);
  frontend.drain();
  EXPECT_EQ(frames_delivered, 3);  // exactly once each, on the target
  EXPECT_GT(tiles_delivered, 0);
  EXPECT_EQ(wrong_session, 0);
}

TEST(ElasticFarm, VoluntaryMigrationReplayIsByteIdentical) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const auto run = [&volume] {
    ServiceFrontend frontend(two_shard_config());
    Session s = frontend.open_session("replay");
    frontend.pin_shard(s, 0);
    std::vector<volren::Image> images;
    s.on_frame([&images](const FrameRecord& f) { images.push_back(f.image); });
    s.submit(request_for(volume, 0.0));
    frontend.drain();
    s.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
    frontend.migrate_session(s, 1);  // policy-equivalent explicit target
    frontend.drain();
    return std::pair<std::vector<volren::Image>, double>(
        std::move(images), frontend.stats().makespan_s);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.second, b.second);  // same schedule, bit for bit
  ASSERT_EQ(a.first.size(), 4u);
  expect_identical(a.first, b.first);
}

TEST(ElasticFarm, MigrateSessionValidatesItsArguments) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceFrontend frontend(two_shard_config());
  Session s = frontend.open_session("strict");
  // Unplaced sessions have nothing to move yet.
  EXPECT_THROW(frontend.migrate_session(s, 1), CheckError);
  s.submit(request_for(volume, 0.0));
  const int home = frontend.shard_of(s);
  frontend.migrate_session(s, home);  // same-shard move: no-op
  EXPECT_EQ(frontend.shard_of(s), home);
  EXPECT_EQ(frontend.stats().migrations, 0u);
  EXPECT_THROW(frontend.migrate_session(s, 7), CheckError);  // out of range
  frontend.drain();
  EXPECT_EQ(s.stats().frames, 1);
}

TEST(ElasticFarm, DrainShardMigratesSessionsAndLeavesNoOrphans) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceFrontend frontend(two_shard_config());
  Session a = frontend.open_session("a");
  Session b = frontend.open_session("b");
  frontend.pin_shard(a, 0);
  frontend.pin_shard(b, 0);
  int delivered = 0;
  a.on_frame([&delivered](const FrameRecord&) { ++delivered; });
  b.on_frame([&delivered](const FrameRecord&) { ++delivered; });
  a.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  b.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);

  frontend.drain_shard(0);
  EXPECT_FALSE(frontend.shard_accepting(0));
  EXPECT_TRUE(frontend.shard_retired(0));
  EXPECT_EQ(frontend.shard_of(a), 1);
  EXPECT_EQ(frontend.shard_of(b), 1);
  EXPECT_EQ(frontend.shard(0).queued_frames(), 0);  // zero orphans
  frontend.drain_shard(0);                          // idempotent

  frontend.drain();
  EXPECT_EQ(delivered, 4);
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.shards_drained, 1u);
  EXPECT_EQ(stats.migrations, 2u);
  EXPECT_EQ(stats.frames_migrated, 4u);
  EXPECT_TRUE(stats.shards[0].retired);

  // New work steers around the retired shard — even a stale pin to it.
  Session late = frontend.open_session("late");
  frontend.pin_shard(late, 0);
  late.submit(request_for(volume, 0.0));
  EXPECT_EQ(frontend.shard_of(late), 1);
  frontend.drain();
  EXPECT_EQ(late.stats().frames, 1);

  // The last accepting shard cannot be drained away.
  EXPECT_THROW(frontend.drain_shard(1), CheckError);
}

TEST(ElasticFarm, RebalancerMovesLoadOffHotShardPixelsIdentical) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const int kSessions = 3;
  const int kFrames = 6;

  const auto run = [&volume](bool rebalance) {
    FrontendConfig config = two_shard_config();
    config.rebalance.enabled = rebalance;
    config.rebalance.period_s = 2e-4;
    config.rebalance.skew_ratio = 1.5;
    config.rebalance.max_moves_per_pass = 2;
    ServiceFrontend frontend(config);
    std::map<int, std::vector<volren::Image>> images;
    std::vector<Session> sessions;
    for (int i = 0; i < kSessions; ++i) {
      Session s = frontend.open_session("hot-" + std::to_string(i));
      frontend.pin_shard(s, 0);  // every session dogpiles shard 0
      s.on_frame([&images, i](const FrameRecord& f) {
        images[i].push_back(f.image);
      });
      s.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
      sessions.push_back(s);
    }
    frontend.drain();
    return std::pair<std::map<int, std::vector<volren::Image>>, FrontendStats>(
        std::move(images), frontend.stats());
  };

  const auto [static_images, static_stats] = run(false);
  const auto [balanced_images, balanced_stats] = run(true);

  // The skewed farm rebalanced: sessions moved off the hot shard and
  // the idle sibling actually served frames.
  EXPECT_GT(balanced_stats.rebalance_migrations, 0u);
  EXPECT_EQ(balanced_stats.migrations, balanced_stats.rebalance_migrations);
  EXPECT_GT(balanced_stats.shards[1].service.frames_total, 0);
  EXPECT_EQ(static_stats.shards[1].service.frames_total, 0);
  // Two shards beat one: parallel makespan shrinks.
  EXPECT_LT(balanced_stats.makespan_s, static_stats.makespan_s);
  // Exactly-once delivery with bit-identical pixels, per session.
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_EQ(balanced_images.at(i).size(), static_cast<std::size_t>(kFrames));
    expect_identical(balanced_images.at(i), static_images.at(i));
  }
}

TEST(ElasticFarm, RebalancerHonorsHysteresisAndSkewGates) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  // A balanced farm (one session per shard) must never churn, whatever
  // the cadence.
  {
    FrontendConfig config = two_shard_config();
    config.rebalance.enabled = true;
    config.rebalance.period_s = 2e-4;
    ServiceFrontend frontend(config);
    Session a = frontend.open_session("a");
    Session b = frontend.open_session("b");
    frontend.pin_shard(a, 0);
    frontend.pin_shard(b, 1);
    a.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
    b.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
    frontend.drain();
    EXPECT_EQ(frontend.stats().rebalance_migrations, 0u);
  }
  // Hysteresis: with an infinite hold-down each session moves at most
  // once, no matter how many skewed control passes run.
  {
    FrontendConfig config = two_shard_config();
    config.rebalance.enabled = true;
    config.rebalance.period_s = 2e-4;
    config.rebalance.hysteresis_s = 1e9;
    ServiceFrontend frontend(config);
    std::vector<Session> sessions;
    for (int i = 0; i < 3; ++i) {
      Session s = frontend.open_session("h-" + std::to_string(i));
      frontend.pin_shard(s, 0);
      s.submit_orbit(volume, tiny_options(), 4, 0.0, 0.0);
      sessions.push_back(s);
    }
    frontend.drain();
    EXPECT_LE(frontend.stats().rebalance_migrations, 3u);
    int total = 0;
    for (Session& s : sessions) total += s.stats().frames;
    EXPECT_EQ(total, 12);
  }
}

TEST(ElasticFarm, AutoscaleGrowsUnderBacklogAndShrinksWhenIdle) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  FrontendConfig config;
  config.shards = 1;
  config.gpus_per_shard = 2;
  config.service.keep_images = true;
  config.rebalance.enabled = true;  // fills the capacity autoscale adds
  config.rebalance.period_s = 2e-4;
  config.rebalance.skew_ratio = 1.5;
  config.autoscale.enabled = true;
  config.autoscale.min_shards = 1;
  config.autoscale.max_shards = 2;
  config.autoscale.scale_up_backlog_s = 1e-4;
  config.autoscale.scale_down_backlog_s = 1e-6;
  ServiceFrontend frontend(config);
  EXPECT_EQ(frontend.num_shards(), 1);

  int delivered = 0;
  std::vector<Session> sessions;
  for (int i = 0; i < 3; ++i) {
    Session s = frontend.open_session("burst-" + std::to_string(i));
    s.on_frame([&delivered](const FrameRecord&) { ++delivered; });
    s.submit_orbit(volume, tiny_options(), 4, 0.0, 0.0);
    sessions.push_back(s);
  }
  frontend.drain();

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(delivered, 12);  // elasticity loses nothing
  EXPECT_EQ(frontend.num_shards(), 2);
  EXPECT_GE(stats.shards_added, 1u);
  EXPECT_GT(stats.shards[1].service.frames_total, 0);  // it pulled weight
  // The burst over, the farm shrank back: the added shard drained and
  // retired (newest-first victim pick), leaving min_shards serving.
  EXPECT_GE(stats.shards_drained, 1u);
  EXPECT_TRUE(frontend.shard_retired(1));
  EXPECT_FALSE(frontend.shard_retired(0));
  // The added shard's capacity interval is bounded by its lifecycle.
  EXPECT_GT(stats.shards[1].active_from_s, 0.0);
  EXPECT_GE(stats.shards[1].active_to_s, stats.shards[1].active_from_s);
}

TEST(ElasticFarm, AddShardJoinsAtFarmTimeAndWindowsTrackCapacity) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  FrontendConfig config;
  config.shards = 1;
  config.gpus_per_shard = 2;
  config.autoscale.max_shards = 2;  // growth capacity, manual control
  config.service.stats_window_s = 1e-4;
  ServiceFrontend frontend(config);

  Session a = frontend.open_session("first");
  a.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
  frontend.drain();
  const double join_before = frontend.stats().makespan_s;
  ASSERT_GT(join_before, 0.0);

  const int added = frontend.add_shard();
  EXPECT_EQ(added, 1);
  EXPECT_EQ(frontend.num_shards(), 2);
  EXPECT_TRUE(frontend.shard_accepting(1));
  EXPECT_THROW(frontend.add_shard(), CheckError);  // slot capacity is 2

  Session b = frontend.open_session("second");
  frontend.pin_shard(b, 1);
  b.submit(request_for(volume, join_before));
  frontend.drain();
  EXPECT_EQ(b.stats().frames, 1);

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.shards_added, 1u);
  // The new shard's timeline starts at the farm join time, never in
  // the farm's past.
  EXPECT_GE(stats.shards[1].active_from_s, join_before);
  // Windowed utilization is over TIME-VARYING capacity: bins that
  // closed before the join divide by one shard's GPUs, bins after it
  // by two.
  const double width = config.service.stats_window_s;
  const double join_s = stats.shards[1].active_from_s;
  ASSERT_FALSE(stats.windows.empty());
  for (const ServiceWindow& w : stats.windows) {
    double capacity = 0.0;
    for (const ShardStats& shard : stats.shards) {
      const double overlap = std::min(w.start_s + width, shard.active_to_s) -
                             std::max(w.start_s, shard.active_from_s);
      if (overlap > 0.0) capacity += overlap * config.gpus_per_shard;
    }
    ASSERT_GT(capacity, 0.0);
    const double expected =
        std::min(1.0, std::max(0.0, w.gpu_busy_s / capacity));
    EXPECT_DOUBLE_EQ(w.utilization, expected);
    if (w.start_s + width <= join_s) {
      // Entirely pre-join: exactly one shard's worth of capacity.
      EXPECT_DOUBLE_EQ(capacity, width * config.gpus_per_shard);
    }
  }
}

TEST(ElasticFarm, DeprecatedConfigAliasesFoldIntoHandoff) {
  FrontendConfig config = two_shard_config();
  config.handoff.peer_hydration = false;  // alias must override this
  config.handoff.failover_prepush = true;
  config.enable_peer_hydration = true;
  config.failover_prepush = false;
  net::FabricModel slow;
  slow.latency_s = 123e-6;
  config.hydration_fabric = slow;
  ServiceFrontend frontend(std::move(config));
  const FrontendConfig& resolved = frontend.config();
  EXPECT_TRUE(resolved.handoff.peer_hydration);
  EXPECT_FALSE(resolved.handoff.failover_prepush);
  EXPECT_DOUBLE_EQ(resolved.handoff.fabric.latency_s, 123e-6);
  // Unset aliases leave the sub-config alone.
  FrontendConfig plain = two_shard_config();
  plain.handoff.peer_hydration = true;
  ServiceFrontend frontend2(std::move(plain));
  EXPECT_TRUE(frontend2.config().handoff.peer_hydration);
}

TEST(ElasticFarm, CustomPlacementPolicyOverridesDefault) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  FrontendConfig config = two_shard_config();
  int queries_seen = 0;
  config.placement = [&queries_seen](const PlacementQuery& query) {
    ++queries_seen;
    // Highest accepting index — the opposite of the default's
    // lowest-index tie-break (and deliberately ignoring the pin).
    int best = -1;
    for (const PlacementSignal& signal : query.shards) {
      if (signal.alive && signal.accepting) best = signal.shard;
    }
    return best;
  };
  ServiceFrontend frontend(config);
  Session s = frontend.open_session("custom");
  frontend.pin_shard(s, 0);  // the policy sees the pin and may ignore it
  s.submit(request_for(volume, 0.0));
  EXPECT_EQ(frontend.shard_of(s), 1);
  EXPECT_EQ(queries_seen, 1);
  frontend.drain();
  EXPECT_EQ(s.stats().frames, 1);

  // The same hook steers voluntary migration targets.
  Session t = frontend.open_session("custom2");
  t.submit(request_for(volume, 0.0));
  EXPECT_EQ(frontend.shard_of(t), 1);
  frontend.migrate_session(t);  // policy choice among the OTHER shards
  EXPECT_EQ(frontend.shard_of(t), 0);
  frontend.drain();
  EXPECT_EQ(t.stats().frames, 1);
}

TEST(ElasticFarm, DefaultPlacementPrefersPinThenWarmThenLeastCost) {
  PlacementQuery query;
  query.shards = {{0, true, true, false, 5.0},
                  {1, true, true, true, 9.0},
                  {2, true, true, false, 1.0}};
  // Warm affinity beats raw cost...
  EXPECT_EQ(default_placement(query), 1);
  // ...a valid pin beats everything...
  query.pinned = 2;
  EXPECT_EQ(default_placement(query), 2);
  // ...and with no pin and no warmth, least cost wins (ties low).
  query.pinned.reset();
  query.shards[1].warm = false;
  EXPECT_EQ(default_placement(query), 2);
  query.shards[0].outstanding_cost_s = 1.0;
  EXPECT_EQ(default_placement(query), 0);
  // Dead or non-accepting shards are never chosen.
  query.shards[0].alive = false;
  query.shards[2].accepting = false;
  EXPECT_EQ(default_placement(query), 1);
}

}  // namespace
}  // namespace vrmr::service
