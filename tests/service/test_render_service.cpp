// RenderService tests: scheduling-policy ordering (FIFO vs round-robin
// vs SJF), priority-class admission, deterministic replay on the DES
// clock, brick-cache effect on staging traffic and runtime, layout
// memoization, volume (address, generation) registration, and the
// serving telemetry.

#include "service/render_service.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

/// Fresh engine + cluster + service per scenario.
struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

/// Session indices of the completed frames, in completion order.
std::vector<int> completion_order(const ServiceStats& stats) {
  std::vector<int> order;
  for (const FrameRecord& f : stats.frames) order.push_back(f.session);
  return order;
}

RenderRequest request_for(const volren::Volume& volume, double arrival,
                          volren::RenderOptions options = tiny_options()) {
  RenderRequest r;
  r.volume = &volume;
  r.options = options;
  r.arrival_s = arrival;
  return r;
}

TEST(RenderService, FifoServesInArrivalOrderAcrossSessions) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::Fifo;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  // B's frames arrive strictly earlier than A's even though A submitted
  // first; FIFO must serve by arrival, not submission.
  for (int f = 0; f < 2; ++f) a.submit(request_for(volume, 10.0 + f));
  for (int f = 0; f < 2; ++f) b.submit(request_for(volume, 0.001 * f));
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(completion_order(stats), (std::vector<int>{1, 1, 0, 0}));
  EXPECT_EQ(stats.frames_total, 4);
}

TEST(RenderService, FifoBreaksArrivalTiesBySubmissionOrder) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::Fifo;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  for (int f = 0; f < 3; ++f) a.submit(request_for(volume, 0.0));
  for (int f = 0; f < 3; ++f) b.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(completion_order(h.service->stats()),
            (std::vector<int>{0, 0, 0, 1, 1, 1}));
}

TEST(RenderService, RoundRobinAlternatesSessions) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  // Identical workload to the FIFO tie test — but fairness interleaves.
  for (int f = 0; f < 3; ++f) a.submit(request_for(volume, 0.0));
  for (int f = 0; f < 3; ++f) b.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(completion_order(h.service->stats()),
            (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(RenderService, ShortestJobFirstPrefersCheaperFrames) {
  const volren::Volume big = volren::datasets::skull({48, 48, 48});
  const volren::Volume small = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::ShortestJobFirst;
  Harness h(2, config);
  // The expensive session submits first; SJF must still serve the cheap
  // session's frames ahead of it.
  Session heavy = h.service->open_session("heavy");
  Session light = h.service->open_session("light");
  for (int f = 0; f < 2; ++f) heavy.submit(request_for(big, 0.0));
  for (int f = 0; f < 2; ++f) light.submit(request_for(small, 0.0));
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(completion_order(stats), (std::vector<int>{1, 1, 0, 0}));
  // The model's prediction must agree with the ordering it induced.
  EXPECT_LT(stats.frames[0].predicted_cost_s, stats.frames[2].predicted_cost_s);
}

TEST(RenderService, InteractiveClassAdmitsBeforeBatch) {
  // Interactive work arriving later than a queued batch backlog must
  // still be served next under every policy (the admission filter runs
  // before the policy orders within a class).
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::Fifo, SchedulingPolicy::RoundRobin,
        SchedulingPolicy::ShortestJobFirst}) {
    ServiceConfig config;
    config.policy = policy;
    Harness h(2, config);
    Session batch = h.service->open_session("batch", Priority::Batch);
    Session live = h.service->open_session("live", Priority::Interactive);
    for (int f = 0; f < 3; ++f) batch.submit(request_for(volume, 0.0));
    for (int f = 0; f < 2; ++f) live.submit(request_for(volume, 0.0));
    h.service->drain();
    // Both interactive frames complete before the 2nd batch frame: the
    // first pick happens at t=0 where both classes have arrived work.
    EXPECT_EQ(completion_order(h.service->stats()),
              (std::vector<int>{1, 1, 0, 0, 0}))
        << to_string(policy);
  }
}

TEST(RenderService, InteractiveP95WaitBoundedBehindBatchBacklog) {
  // An interactive session submitted behind a 50-frame batch backlog:
  // priority admission bounds each interactive frame's queue wait by
  // the one batch frame already running, so interactive p95 wait stays
  // below the batch frame service time under all three policies.
  const volren::Volume batch_volume = volren::datasets::supernova({32, 32, 32});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::Fifo, SchedulingPolicy::RoundRobin,
        SchedulingPolicy::ShortestJobFirst}) {
    ServiceConfig config;
    config.policy = policy;
    Harness h(2, config);
    Session batch = h.service->open_session("batch", Priority::Batch);
    Session live = h.service->open_session("live", Priority::Interactive);
    for (int f = 0; f < 50; ++f) batch.submit(request_for(batch_volume, 0.0));
    // Interactive frames trickle in while the backlog is queued.
    live.submit_orbit(live_volume, tiny_options(), 8, 0.0005, 0.001);
    h.service->drain();

    const SessionStats batch_stats = batch.stats();
    const SessionStats live_stats = live.stats();
    ASSERT_EQ(batch_stats.frames, 50);
    ASSERT_EQ(live_stats.frames, 8);

    double batch_service_s = 0.0;
    std::vector<double> live_waits;
    for (const FrameRecord& f : h.service->stats().frames) {
      if (f.session == 0)
        batch_service_s = std::max(batch_service_s, f.service_s());
      else
        live_waits.push_back(f.queue_wait_s());
    }
    EXPECT_LT(percentile(live_waits, 95.0), batch_service_s)
        << to_string(policy);
  }
}

TEST(RenderService, LayoutBuiltOncePerSubmittedFrame) {
  // SJF re-scores every queued head per scheduling decision; the
  // memoized submit-time layout means K frames cost exactly K layout
  // builds regardless of how many decisions ran.
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::ShortestJobFirst;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  constexpr int kFrames = 5;
  for (int f = 0; f < kFrames; ++f) a.submit(request_for(volume, 0.0));
  for (int f = 0; f < kFrames; ++f) b.submit(request_for(volume, 0.0));
  EXPECT_EQ(h.service->layouts_built(), 2u * kFrames);
  h.service->drain();
  // Serving (scheduling decisions + renders) built no further layouts.
  EXPECT_EQ(h.service->layouts_built(), 2u * kFrames);
}

TEST(RenderService, DeterministicReplayOnTheDesClock) {
  auto run_once = [] {
    const volren::Volume volume = volren::datasets::supernova({24, 24, 24});
    ServiceConfig config;
    config.policy = SchedulingPolicy::RoundRobin;
    Harness h(4, config);
    Session a = h.service->open_session("a");
    Session b = h.service->open_session("b");
    a.submit_orbit(volume, tiny_options(), 4, 0.0, 0.05);
    b.submit_orbit(volume, tiny_options(), 4, 0.02, 0.05);
    h.service->drain();
    return h.service->stats();
  };
  const ServiceStats first = run_once();
  const ServiceStats second = run_once();
  ASSERT_EQ(first.frames.size(), second.frames.size());
  for (std::size_t i = 0; i < first.frames.size(); ++i) {
    EXPECT_EQ(first.frames[i].session, second.frames[i].session);
    EXPECT_EQ(first.frames[i].frame_id, second.frames[i].frame_id);
    // Bit-identical timing: the DES replays exactly.
    EXPECT_EQ(first.frames[i].start_s, second.frames[i].start_s);
    EXPECT_EQ(first.frames[i].finish_s, second.frames[i].finish_s);
    EXPECT_EQ(first.frames[i].cache_hits, second.frames[i].cache_hits);
  }
  EXPECT_EQ(first.makespan_s, second.makespan_s);
}

TEST(RenderService, BrickCacheSkipsRestagingWithinASession) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  auto run_with_cache = [&volume](bool enabled) {
    ServiceConfig config;
    config.enable_brick_cache = enabled;
    Harness h(2, config);
    Session s = h.service->open_session("orbit");
    s.submit_orbit(volume, tiny_options(), 4, 0.0, 0.0);
    h.service->drain();
    return h.service->stats();
  };

  const ServiceStats cold = run_with_cache(false);
  const ServiceStats warm = run_with_cache(true);

  // Frame 0 stages everything; frames 1..3 hit every brick.
  const auto bricks = warm.frames[0].cache_misses;
  EXPECT_GT(bricks, 0u);
  for (std::size_t f = 1; f < warm.frames.size(); ++f) {
    EXPECT_EQ(warm.frames[f].cache_hits, bricks);
    EXPECT_EQ(warm.frames[f].cache_misses, 0u);
    EXPECT_EQ(warm.frames[f].stats.bytes_h2d, 0u);
    EXPECT_GT(warm.frames[f].stats.bytes_h2d_saved, 0u);
  }
  EXPECT_DOUBLE_EQ(warm.cache_hit_rate, 0.75);
  EXPECT_GT(warm.bytes_h2d_saved, 0u);

  // Without the cache every frame restages; with it the session is
  // strictly faster on the simulated clock.
  EXPECT_EQ(cold.cache_hit_rate, 0.0);
  EXPECT_EQ(cold.bytes_h2d_saved, 0u);
  EXPECT_LT(warm.makespan_s, cold.makespan_s);
}

TEST(RenderService, CacheDoesNotChangeRenderedPixels) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  auto frames_with_cache = [&volume](bool enabled) {
    ServiceConfig config;
    config.enable_brick_cache = enabled;
    config.keep_images = true;
    Harness h(2, config);
    Session s = h.service->open_session("orbit");
    s.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
    h.service->drain();
    return h.service->stats();
  };
  const ServiceStats cold = frames_with_cache(false);
  const ServiceStats warm = frames_with_cache(true);
  ASSERT_EQ(cold.frames.size(), warm.frames.size());
  for (std::size_t f = 0; f < cold.frames.size(); ++f) {
    const volren::ImageDiff diff =
        volren::compare_images(cold.frames[f].image, warm.frames[f].image);
    EXPECT_EQ(diff.max_abs, 0.0) << "frame " << f;
  }
}

TEST(RenderService, DistinctVolumesDoNotShareResidency) {
  const volren::Volume va = volren::datasets::skull({24, 24, 24});
  const volren::Volume vb = volren::datasets::supernova({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  a.submit_orbit(va, tiny_options(), 2, 0.0, 0.0);
  b.submit_orbit(vb, tiny_options(), 2, 0.0, 0.0);
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  // Order: a0 b0 a1 b1 — each session's first frame misses everything
  // (the other session's bricks are a different volume), second frame
  // hits everything (both working sets fit the default budget).
  ASSERT_EQ(stats.frames.size(), 4u);
  EXPECT_EQ(stats.frames[0].cache_hits, 0u);
  EXPECT_EQ(stats.frames[1].cache_hits, 0u);
  EXPECT_GT(stats.frames[2].cache_hits, 0u);
  EXPECT_EQ(stats.frames[2].cache_misses, 0u);
  EXPECT_GT(stats.frames[3].cache_hits, 0u);
  EXPECT_EQ(stats.frames[3].cache_misses, 0u);
}

TEST(RenderService, TinyCacheBudgetNeverServesStaleHits) {
  // A budget smaller than one brick disables caching in effect; every
  // frame restages and correctness is unaffected.
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.cache_capacity_override = 1;  // 1 byte
  Harness h(2, config);
  Session s = h.service->open_session("orbit");
  s.submit_orbit(volume, tiny_options(), 3, 0.0, 0.0);
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_GT(stats.cache.rejected_oversized, 0u);
  for (const FrameRecord& f : stats.frames) EXPECT_GT(f.stats.bytes_h2d, 0u);
}

TEST(RenderService, QueueWaitAndIdleGapsAccounted) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("sparse");
  s.submit(request_for(volume, 0.0));
  s.submit(request_for(volume, 1000.0));  // long idle gap
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  ASSERT_EQ(stats.frames.size(), 2u);
  // The second frame starts exactly at its arrival (idle cluster).
  EXPECT_DOUBLE_EQ(stats.frames[1].start_s, 1000.0);
  EXPECT_DOUBLE_EQ(stats.frames[1].queue_wait_s(), 0.0);
  EXPECT_GT(stats.makespan_s, 1000.0);
  // Utilization reflects the idle gap.
  EXPECT_LT(stats.cluster_utilization, 0.01);
}

TEST(RenderService, TelemetryIsConsistent) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  Session a = h.service->open_session("a", Priority::Interactive);
  Session b = h.service->open_session("b");
  a.submit_orbit(volume, tiny_options(), 5, 0.0, 0.01);
  b.submit_orbit(volume, tiny_options(), 5, 0.0, 0.01);
  h.service->drain();
  const ServiceStats stats = h.service->stats();

  EXPECT_EQ(stats.frames_total, 10);
  EXPECT_GT(stats.fps, 0.0);
  EXPECT_GT(stats.cluster_utilization, 0.0);
  EXPECT_LE(stats.cluster_utilization, 1.0 + 1e-9);
  ASSERT_EQ(stats.sessions.size(), 2u);
  EXPECT_EQ(stats.sessions[0].priority, Priority::Interactive);
  EXPECT_EQ(stats.sessions[1].priority, Priority::Batch);
  for (const SessionStats& session : stats.sessions) {
    EXPECT_EQ(session.frames, 5);
    EXPECT_EQ(session.queued_frames, 0);
    EXPECT_GT(session.fps, 0.0);
    EXPECT_LE(session.p50_latency_s, session.p95_latency_s);
    EXPECT_LE(session.p95_latency_s, session.p99_latency_s);
    EXPECT_LE(session.p99_latency_s, session.max_latency_s + 1e-12);
    EXPECT_GT(session.mean_latency_s, 0.0);
  }
}

TEST(RenderService, SubmitValidation) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(1);
  Session invalid;  // default-constructed handle is not a session
  EXPECT_THROW(invalid.submit(request_for(volume, 0.0)), vrmr::CheckError);
  EXPECT_THROW(invalid.stats(), vrmr::CheckError);
  Session s = h.service->open_session("s");
  RenderRequest no_volume;
  no_volume.options = tiny_options();
  EXPECT_THROW(s.submit(no_volume), vrmr::CheckError);
  EXPECT_THROW(s.submit(request_for(volume, -1.0)), vrmr::CheckError);
  // A non-finite arrival would make drain() silently drop the frame.
  EXPECT_THROW(
      s.submit(request_for(volume, std::numeric_limits<double>::infinity())),
      vrmr::CheckError);
  EXPECT_THROW(
      s.submit(request_for(volume, std::numeric_limits<double>::quiet_NaN())),
      vrmr::CheckError);
}

TEST(RenderService, RebrickedVolumeDoesNotAliasWarmBricks) {
  // The same volume rendered under a different brick decomposition
  // reuses brick ids 0..N for different extents; those must miss, not
  // falsely hit the old layout's payloads.
  const volren::Volume volume = volren::datasets::skull({32, 32, 32});
  Harness h(2);
  Session s = h.service->open_session("rebrick");
  volren::RenderOptions coarse = tiny_options();
  coarse.brick_size = 16;  // 2x2x2 bricks
  s.submit(request_for(volume, 0.0, coarse));
  volren::RenderOptions fine = tiny_options();
  fine.brick_size = 8;  // 4x4x4 bricks, ids overlap 0..7
  s.submit(request_for(volume, 0.0, fine));
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  ASSERT_EQ(stats.frames.size(), 2u);
  EXPECT_EQ(stats.frames[1].cache_hits, 0u);
  EXPECT_GT(stats.frames[1].cache_misses, 0u);
  EXPECT_GT(stats.frames[1].stats.bytes_h2d, 0u);  // really restaged
}

TEST(RenderService, InvalidateVolumeRestagesCold) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  Harness h(2);
  Session s = h.service->open_session("orbit");
  s.submit(request_for(volume, 0.0));
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_GT(h.service->stats().cache.hits, 0u);  // second frame hit

  // After invalidation the same Volume address starts cold — the guard
  // against a new volume reusing a destroyed volume's address.
  h.service->invalidate_volume(&volume);
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  const FrameRecord& third = stats.frames.back();
  EXPECT_EQ(third.cache_hits, 0u);
  EXPECT_GT(third.cache_misses, 0u);
}

TEST(RenderService, ChangedDimsWithoutInvalidationRejected) {
  // Two different-shaped volumes at one address: destroy-and-reallocate
  // can hand back the same pointer, which used to silently inherit the
  // dead volume's residency. Registration now records voxel dims and
  // submit CHECKs them.
  Harness h(2);
  Session s = h.service->open_session("reuse");
  std::optional<volren::Volume> slot;  // one address, two volume lifetimes
  slot.emplace(volren::datasets::skull({24, 24, 24}));
  s.submit(request_for(*slot, 0.0));
  h.service->drain();

  // Same address, different dims, no invalidation: rejected.
  slot.emplace(volren::datasets::skull({16, 16, 16}));
  EXPECT_THROW(s.submit(request_for(*slot, 0.0)), vrmr::CheckError);

  // After invalidate_volume the address re-registers under the next
  // generation and the new shape is accepted (and starts cold).
  const std::uint64_t before = h.service->registration_generation();
  h.service->invalidate_volume(&*slot);
  EXPECT_EQ(h.service->registration_generation(), before + 1);
  s.submit(request_for(*slot, 0.0));
  h.service->drain();
  // frames() is the zero-copy view — stats() returns by value, and a
  // reference into that temporary would dangle past the full expression
  // (caught by the ASan CI job).
  const FrameRecord& fresh = h.service->frames().back();
  EXPECT_EQ(fresh.cache_hits, 0u);

  // A frame QUEUED before the reshape carries a layout built from the
  // old dims; serving it against the new volume is rejected even though
  // the invalidation made the re-registration itself clean.
  s.submit(request_for(*slot, 0.0));  // queued against 16^3
  slot.emplace(volren::datasets::skull({24, 24, 24}));
  h.service->invalidate_volume(&*slot);
  EXPECT_THROW(h.service->drain(), vrmr::CheckError);
}

TEST(RenderService, DrainIsReusableAndResidencyPersists) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  Harness h(2);
  Session s = h.service->open_session("orbit");
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  const ServiceStats first = h.service->stats();
  EXPECT_EQ(first.frames_total, 1);
  EXPECT_EQ(first.cache.hits, 0u);

  // A later burst on the same service: bricks are still warm, and the
  // backdated arrival_s=0.0 is clamped to the current clock so latency
  // does not absorb the first drain's duration.
  const double clock_before_second_drain = h.engine.now();
  EXPECT_GT(clock_before_second_drain, 0.0);
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  const ServiceStats second = h.service->stats();
  EXPECT_EQ(second.frames_total, 2);
  EXPECT_GT(second.cache.hits, 0u);
  EXPECT_EQ(second.cache.misses, first.cache.misses);  // no new misses
  EXPECT_DOUBLE_EQ(second.frames[1].arrival_s, clock_before_second_drain);
  EXPECT_LT(second.frames[1].latency_s(), second.frames[0].latency_s());
}

TEST(RenderService, UtilizationIgnoresForeignClusterActivity) {
  // The cluster reference is shared: work run outside the service
  // before its first frame must not inflate (or dilute) utilization.
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  // Foreign frame straight on the cluster, before the service serves.
  volren::RenderOptions options = tiny_options();
  (void)volren::render_mapreduce(*h.cluster, volume, options);
  ASSERT_GT(h.cluster->total_gpu_busy(), 0.0);

  Session s = h.service->open_session("late");
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  EXPECT_GT(stats.cluster_utilization, 0.0);
  EXPECT_LE(stats.cluster_utilization, 1.0 + 1e-9);
}

TEST(RenderService, OutstandingCostTracksQueue) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  Harness h(2);
  Session s = h.service->open_session("orbit");
  EXPECT_DOUBLE_EQ(h.service->outstanding_cost_s(), 0.0);
  s.submit(request_for(volume, 0.0));
  const double one = h.service->outstanding_cost_s();
  EXPECT_GT(one, 0.0);
  s.submit(request_for(volume, 0.0));
  EXPECT_GT(h.service->outstanding_cost_s(), one);
  h.service->drain();
  EXPECT_DOUBLE_EQ(h.service->outstanding_cost_s(), 0.0);
  EXPECT_EQ(h.service->queued_frames(), 0);
}

}  // namespace
}  // namespace vrmr::service
