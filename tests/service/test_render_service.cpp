// RenderService tests: scheduling-policy ordering (FIFO vs round-robin
// vs SJF), deterministic replay on the DES clock, brick-cache effect on
// staging traffic and runtime, and the serving telemetry.

#include "service/render_service.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

/// Fresh engine + cluster + service per scenario.
struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

/// Session ids of the completed frames, in completion order.
std::vector<SessionId> completion_order(const ServiceStats& stats) {
  std::vector<SessionId> order;
  for (const FrameRecord& f : stats.frames) order.push_back(f.session);
  return order;
}

RenderRequest request_for(const volren::Volume& volume, double arrival,
                          volren::RenderOptions options = tiny_options()) {
  RenderRequest r;
  r.volume = &volume;
  r.options = options;
  r.arrival_s = arrival;
  return r;
}

TEST(RenderService, FifoServesInArrivalOrderAcrossSessions) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::Fifo;
  Harness h(2, config);
  const SessionId a = h.service->open_session("a");
  const SessionId b = h.service->open_session("b");
  // B's frames arrive strictly earlier than A's even though A submitted
  // first; FIFO must serve by arrival, not submission.
  for (int f = 0; f < 2; ++f)
    h.service->submit(a, request_for(volume, 10.0 + f));
  for (int f = 0; f < 2; ++f)
    h.service->submit(b, request_for(volume, 0.001 * f));
  const ServiceStats stats = h.service->run();
  EXPECT_EQ(completion_order(stats), (std::vector<SessionId>{b, b, a, a}));
  EXPECT_EQ(stats.frames_total, 4);
}

TEST(RenderService, FifoBreaksArrivalTiesBySubmissionOrder) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::Fifo;
  Harness h(2, config);
  const SessionId a = h.service->open_session("a");
  const SessionId b = h.service->open_session("b");
  for (int f = 0; f < 3; ++f) h.service->submit(a, request_for(volume, 0.0));
  for (int f = 0; f < 3; ++f) h.service->submit(b, request_for(volume, 0.0));
  const ServiceStats stats = h.service->run();
  EXPECT_EQ(completion_order(stats), (std::vector<SessionId>{a, a, a, b, b, b}));
}

TEST(RenderService, RoundRobinAlternatesSessions) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  const SessionId a = h.service->open_session("a");
  const SessionId b = h.service->open_session("b");
  // Identical workload to the FIFO tie test — but fairness interleaves.
  for (int f = 0; f < 3; ++f) h.service->submit(a, request_for(volume, 0.0));
  for (int f = 0; f < 3; ++f) h.service->submit(b, request_for(volume, 0.0));
  const ServiceStats stats = h.service->run();
  EXPECT_EQ(completion_order(stats), (std::vector<SessionId>{a, b, a, b, a, b}));
}

TEST(RenderService, ShortestJobFirstPrefersCheaperFrames) {
  const volren::Volume big = volren::datasets::skull({48, 48, 48});
  const volren::Volume small = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::ShortestJobFirst;
  Harness h(2, config);
  // The expensive session submits first; SJF must still serve the cheap
  // session's frames ahead of it.
  const SessionId heavy = h.service->open_session("heavy");
  const SessionId light = h.service->open_session("light");
  for (int f = 0; f < 2; ++f) h.service->submit(heavy, request_for(big, 0.0));
  for (int f = 0; f < 2; ++f) h.service->submit(light, request_for(small, 0.0));
  const ServiceStats stats = h.service->run();
  EXPECT_EQ(completion_order(stats),
            (std::vector<SessionId>{light, light, heavy, heavy}));
  // The model's prediction must agree with the ordering it induced.
  EXPECT_LT(stats.frames[0].predicted_cost_s, stats.frames[2].predicted_cost_s);
}

TEST(RenderService, DeterministicReplayOnTheDesClock) {
  auto run_once = [] {
    const volren::Volume volume = volren::datasets::supernova({24, 24, 24});
    ServiceConfig config;
    config.policy = SchedulingPolicy::RoundRobin;
    Harness h(4, config);
    const SessionId a = h.service->open_session("a");
    const SessionId b = h.service->open_session("b");
    h.service->submit_orbit(a, volume, tiny_options(), 4, 0.0, 0.05);
    h.service->submit_orbit(b, volume, tiny_options(), 4, 0.02, 0.05);
    return h.service->run();
  };
  const ServiceStats first = run_once();
  const ServiceStats second = run_once();
  ASSERT_EQ(first.frames.size(), second.frames.size());
  for (std::size_t i = 0; i < first.frames.size(); ++i) {
    EXPECT_EQ(first.frames[i].session, second.frames[i].session);
    EXPECT_EQ(first.frames[i].frame_id, second.frames[i].frame_id);
    // Bit-identical timing: the DES replays exactly.
    EXPECT_EQ(first.frames[i].start_s, second.frames[i].start_s);
    EXPECT_EQ(first.frames[i].finish_s, second.frames[i].finish_s);
    EXPECT_EQ(first.frames[i].cache_hits, second.frames[i].cache_hits);
  }
  EXPECT_EQ(first.makespan_s, second.makespan_s);
}

TEST(RenderService, BrickCacheSkipsRestagingWithinASession) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  auto run_with_cache = [&volume](bool enabled) {
    ServiceConfig config;
    config.enable_brick_cache = enabled;
    Harness h(2, config);
    const SessionId s = h.service->open_session("orbit");
    h.service->submit_orbit(s, volume, tiny_options(), 4, 0.0, 0.0);
    return h.service->run();
  };

  const ServiceStats cold = run_with_cache(false);
  const ServiceStats warm = run_with_cache(true);

  // Frame 0 stages everything; frames 1..3 hit every brick.
  const auto bricks = warm.frames[0].cache_misses;
  EXPECT_GT(bricks, 0u);
  for (std::size_t f = 1; f < warm.frames.size(); ++f) {
    EXPECT_EQ(warm.frames[f].cache_hits, bricks);
    EXPECT_EQ(warm.frames[f].cache_misses, 0u);
    EXPECT_EQ(warm.frames[f].stats.bytes_h2d, 0u);
    EXPECT_GT(warm.frames[f].stats.bytes_h2d_saved, 0u);
  }
  EXPECT_DOUBLE_EQ(warm.cache_hit_rate, 0.75);
  EXPECT_GT(warm.bytes_h2d_saved, 0u);

  // Without the cache every frame restages; with it the session is
  // strictly faster on the simulated clock.
  EXPECT_EQ(cold.cache_hit_rate, 0.0);
  EXPECT_EQ(cold.bytes_h2d_saved, 0u);
  EXPECT_LT(warm.makespan_s, cold.makespan_s);
}

TEST(RenderService, CacheDoesNotChangeRenderedPixels) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  auto frames_with_cache = [&volume](bool enabled) {
    ServiceConfig config;
    config.enable_brick_cache = enabled;
    config.keep_images = true;
    Harness h(2, config);
    const SessionId s = h.service->open_session("orbit");
    h.service->submit_orbit(s, volume, tiny_options(), 3, 0.0, 0.0);
    return h.service->run();
  };
  const ServiceStats cold = frames_with_cache(false);
  const ServiceStats warm = frames_with_cache(true);
  ASSERT_EQ(cold.frames.size(), warm.frames.size());
  for (std::size_t f = 0; f < cold.frames.size(); ++f) {
    const volren::ImageDiff diff =
        volren::compare_images(cold.frames[f].image, warm.frames[f].image);
    EXPECT_EQ(diff.max_abs, 0.0) << "frame " << f;
  }
}

TEST(RenderService, DistinctVolumesDoNotShareResidency) {
  const volren::Volume va = volren::datasets::skull({24, 24, 24});
  const volren::Volume vb = volren::datasets::supernova({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  const SessionId a = h.service->open_session("a");
  const SessionId b = h.service->open_session("b");
  h.service->submit_orbit(a, va, tiny_options(), 2, 0.0, 0.0);
  h.service->submit_orbit(b, vb, tiny_options(), 2, 0.0, 0.0);
  const ServiceStats stats = h.service->run();
  // Order: a0 b0 a1 b1 — each session's first frame misses everything
  // (the other session's bricks are a different volume), second frame
  // hits everything (both working sets fit the default budget).
  ASSERT_EQ(stats.frames.size(), 4u);
  EXPECT_EQ(stats.frames[0].cache_hits, 0u);
  EXPECT_EQ(stats.frames[1].cache_hits, 0u);
  EXPECT_GT(stats.frames[2].cache_hits, 0u);
  EXPECT_EQ(stats.frames[2].cache_misses, 0u);
  EXPECT_GT(stats.frames[3].cache_hits, 0u);
  EXPECT_EQ(stats.frames[3].cache_misses, 0u);
}

TEST(RenderService, TinyCacheBudgetNeverServesStaleHits) {
  // A budget smaller than one brick disables caching in effect; every
  // frame restages and correctness is unaffected.
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.cache_capacity_override = 1;  // 1 byte
  Harness h(2, config);
  const SessionId s = h.service->open_session("orbit");
  h.service->submit_orbit(s, volume, tiny_options(), 3, 0.0, 0.0);
  const ServiceStats stats = h.service->run();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_GT(stats.cache.rejected_oversized, 0u);
  for (const FrameRecord& f : stats.frames) EXPECT_GT(f.stats.bytes_h2d, 0u);
}

TEST(RenderService, QueueWaitAndIdleGapsAccounted) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  const SessionId s = h.service->open_session("sparse");
  h.service->submit(s, request_for(volume, 0.0));
  h.service->submit(s, request_for(volume, 1000.0));  // long idle gap
  const ServiceStats stats = h.service->run();
  ASSERT_EQ(stats.frames.size(), 2u);
  // The second frame starts exactly at its arrival (idle cluster).
  EXPECT_DOUBLE_EQ(stats.frames[1].start_s, 1000.0);
  EXPECT_DOUBLE_EQ(stats.frames[1].queue_wait_s(), 0.0);
  EXPECT_GT(stats.makespan_s, 1000.0);
  // Utilization reflects the idle gap.
  EXPECT_LT(stats.cluster_utilization, 0.01);
}

TEST(RenderService, TelemetryIsConsistent) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  const SessionId a = h.service->open_session("a");
  const SessionId b = h.service->open_session("b");
  h.service->submit_orbit(a, volume, tiny_options(), 5, 0.0, 0.01);
  h.service->submit_orbit(b, volume, tiny_options(), 5, 0.0, 0.01);
  const ServiceStats stats = h.service->run();

  EXPECT_EQ(stats.frames_total, 10);
  EXPECT_GT(stats.fps, 0.0);
  EXPECT_GT(stats.cluster_utilization, 0.0);
  EXPECT_LE(stats.cluster_utilization, 1.0 + 1e-9);
  ASSERT_EQ(stats.sessions.size(), 2u);
  for (const SessionSummary& session : stats.sessions) {
    EXPECT_EQ(session.frames, 5);
    EXPECT_GT(session.fps, 0.0);
    EXPECT_LE(session.p50_latency_s, session.p95_latency_s);
    EXPECT_LE(session.p95_latency_s, session.p99_latency_s);
    EXPECT_LE(session.p99_latency_s, session.max_latency_s + 1e-12);
    EXPECT_GT(session.mean_latency_s, 0.0);
  }
}

TEST(RenderService, SubmitValidation) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(1);
  EXPECT_THROW(h.service->submit(0, request_for(volume, 0.0)), vrmr::CheckError);
  const SessionId s = h.service->open_session("s");
  RenderRequest no_volume;
  no_volume.options = tiny_options();
  EXPECT_THROW(h.service->submit(s, no_volume), vrmr::CheckError);
  RenderRequest negative = request_for(volume, -1.0);
  EXPECT_THROW(h.service->submit(s, negative), vrmr::CheckError);
  // A non-finite arrival would make run() silently drop the frame.
  RenderRequest infinite =
      request_for(volume, std::numeric_limits<double>::infinity());
  EXPECT_THROW(h.service->submit(s, infinite), vrmr::CheckError);
  RenderRequest nan = request_for(volume, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(h.service->submit(s, nan), vrmr::CheckError);
}

TEST(RenderService, RebrickedVolumeDoesNotAliasWarmBricks) {
  // The same volume rendered under a different brick decomposition
  // reuses brick ids 0..N for different extents; those must miss, not
  // falsely hit the old layout's payloads.
  const volren::Volume volume = volren::datasets::skull({32, 32, 32});
  Harness h(2);
  const SessionId s = h.service->open_session("rebrick");
  volren::RenderOptions coarse = tiny_options();
  coarse.brick_size = 16;  // 2x2x2 bricks
  h.service->submit(s, request_for(volume, 0.0, coarse));
  volren::RenderOptions fine = tiny_options();
  fine.brick_size = 8;  // 4x4x4 bricks, ids overlap 0..7
  h.service->submit(s, request_for(volume, 0.0, fine));
  const ServiceStats stats = h.service->run();
  ASSERT_EQ(stats.frames.size(), 2u);
  EXPECT_EQ(stats.frames[1].cache_hits, 0u);
  EXPECT_GT(stats.frames[1].cache_misses, 0u);
  EXPECT_GT(stats.frames[1].stats.bytes_h2d, 0u);  // really restaged
}

TEST(RenderService, InvalidateVolumeRestagesCold) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  Harness h(2);
  const SessionId s = h.service->open_session("orbit");
  h.service->submit(s, request_for(volume, 0.0));
  h.service->submit(s, request_for(volume, 0.0));
  const ServiceStats warm = h.service->run();
  EXPECT_GT(warm.cache.hits, 0u);  // second frame hit

  // After invalidation the same Volume address starts cold — the
  // guard against a new volume reusing a destroyed volume's address.
  h.service->invalidate_volume(&volume);
  h.service->submit(s, request_for(volume, 0.0));
  const ServiceStats cold = h.service->run();
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_GT(cold.cache.misses, 0u);
}

TEST(RenderService, RunIsReusableAndResidencyPersists) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  Harness h(2);
  const SessionId s = h.service->open_session("orbit");
  h.service->submit(s, request_for(volume, 0.0));
  const ServiceStats first = h.service->run();
  EXPECT_EQ(first.frames_total, 1);
  EXPECT_EQ(first.cache.hits, 0u);

  // A later burst on the same service: bricks are still warm, and the
  // backdated arrival_s=0.0 is clamped to the current clock so latency
  // does not absorb the first run's duration.
  const double clock_before_second_run = h.engine.now();
  EXPECT_GT(clock_before_second_run, 0.0);
  h.service->submit(s, request_for(volume, 0.0));
  const ServiceStats second = h.service->run();
  EXPECT_EQ(second.frames_total, 1);
  EXPECT_GT(second.cache.hits, 0u);
  EXPECT_EQ(second.cache.misses, 0u);
  EXPECT_DOUBLE_EQ(second.frames[0].arrival_s, clock_before_second_run);
  EXPECT_LT(second.frames[0].latency_s(), first.frames[0].latency_s());
}

}  // namespace
}  // namespace vrmr::service
