// Arc (ghost-list adaptive replacement) brick-cache tests: resident
// byte-budget invariant, ghost hits steering the adaptive target p in
// the right direction, scan resistance (a hot twice-touched set
// survives a 2x-budget one-pass streaming scan that flushes Lru),
// speculative-prefetch accounting (T1 landing, demand re-arming, no
// ghost pollution), invalidate_volume purging ghost entries, telemetry
// reconciliation across lists, and the CachePolicy plumbing through
// ServiceConfig / per-shard ServiceFrontend.

#include <gtest/gtest.h>

#include "service/brick_cache.hpp"
#include "service/frontend.hpp"
#include "service/render_service.hpp"
#include "util/check.hpp"
#include "volren/datasets.hpp"

namespace vrmr::service {
namespace {

BrickCache arc_cache(std::uint64_t capacity, int gpus = 1) {
  return BrickCache(gpus, capacity, CachePolicy::Arc);
}

TEST(ArcCache, MissThenHitMatchesLruAccounting) {
  BrickCache cache = arc_cache(1000);
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 0}, 100));  // cold: admitted to T1
  EXPECT_TRUE(cache.lookup_or_admit(0, {1, 0}, 100));   // warm: promoted to T2
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().bytes_saved, 100u);
  EXPECT_EQ(cache.stats().t1_hits, 1u);
  EXPECT_EQ(cache.stats().t2_hits, 0u);
  const BrickCache::ArcProbe probe = cache.arc_probe(0);
  EXPECT_EQ(probe.t1_entries, 0u);
  EXPECT_EQ(probe.t2_entries, 1u);
  EXPECT_EQ(probe.t2_bytes, 100u);
}

TEST(ArcCache, ResidentBytesNeverExceedBudget) {
  BrickCache cache = arc_cache(100);
  // A mixed demand stream: repeats (frequency traffic), fresh keys
  // (recency traffic), re-demands of evicted keys (ghost traffic).
  for (int round = 0; round < 4; ++round) {
    for (int b = 0; b < 12; ++b) {
      cache.lookup_or_admit(0, {1, (round * 7 + b * 3) % 17}, 30);
      const BrickCache::ArcProbe probe = cache.arc_probe(0);
      EXPECT_LE(probe.t1_bytes + probe.t2_bytes, 100u);
      EXPECT_EQ(probe.t1_bytes + probe.t2_bytes, cache.resident_bytes(0));
      EXPECT_EQ(probe.t1_entries + probe.t2_entries, cache.resident_bricks(0));
      // Directory bounds: recency history within one budget, whole
      // directory within two.
      EXPECT_LE(probe.t1_bytes + probe.b1_bytes, 100u);
      EXPECT_LE(probe.t1_bytes + probe.t2_bytes + probe.b1_bytes + probe.b2_bytes,
                200u);
    }
  }
}

TEST(ArcCache, GhostHitsAdaptTargetInTheRightDirection) {
  BrickCache cache = arc_cache(100);
  // Ghost memory lives in the budget T1 leaves unused (the classic
  // |T1| + |B1| <= c directory bound), so park a hot set in T2 first.
  for (int touch = 0; touch < 2; ++touch) {
    for (int h = 10; h <= 12; ++h) cache.lookup_or_admit(0, {1, h}, 20);
  }
  EXPECT_EQ(cache.arc_probe(0).t2_bytes, 60u);

  // Fill the 40-byte recency side, force A out into the B1 ghost list.
  cache.lookup_or_admit(0, {1, 0}, 20);  // A
  cache.lookup_or_admit(0, {1, 1}, 20);  // B
  cache.lookup_or_admit(0, {1, 2}, 20);  // C evicts A -> B1
  EXPECT_FALSE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.arc_probe(0).b1_entries, 1u);
  EXPECT_DOUBLE_EQ(cache.arc_probe(0).p, 0.0);

  // Re-demand A: B1 ghost hit — the recency list was too small, p
  // grows (by A's bytes; B2 is empty) and A lands in T2.
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 0}, 20));
  EXPECT_EQ(cache.stats().b1_ghost_hits, 1u);
  EXPECT_DOUBLE_EQ(cache.arc_probe(0).p, 20.0);
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.arc_probe(0).t2_entries, 4u);

  // A cold insert now finds T1 exactly at its 20-byte target, so the
  // victim comes from T2's LRU end: the oldest hot brick moves to B2.
  cache.lookup_or_admit(0, {1, 3}, 20);  // D
  EXPECT_FALSE(cache.resident(0, {1, 10}));
  EXPECT_EQ(cache.arc_probe(0).b2_entries, 1u);

  // Re-demand it: B2 ghost hit — the frequency list was too small, p
  // shrinks back.
  const double p_before = cache.arc_probe(0).p;
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 10}, 20));
  EXPECT_EQ(cache.stats().b2_ghost_hits, 1u);
  EXPECT_LT(cache.arc_probe(0).p, p_before);
}

TEST(ArcCache, HotSetSurvivesTwoBudgetStreamingScanThatFlushesLru) {
  for (const CachePolicy policy : {CachePolicy::Lru, CachePolicy::Arc}) {
    BrickCache cache(1, 100, policy);
    // Hot working set: two bricks touched twice (under Arc: in T2).
    for (int touch = 0; touch < 2; ++touch) {
      cache.lookup_or_admit(0, {1, 0}, 30);
      cache.lookup_or_admit(0, {1, 1}, 30);
    }
    // One-pass streaming scan worth 2x the whole budget, every key
    // demanded exactly once (a different volume's export).
    for (int b = 0; b < 10; ++b) {
      EXPECT_FALSE(cache.lookup_or_admit(0, {2, b}, 20));
    }
    const bool hot_resident =
        cache.resident(0, {1, 0}) && cache.resident(0, {1, 1});
    if (policy == CachePolicy::Arc) {
      EXPECT_TRUE(hot_resident) << "scan flushed the frequent list";
      // And the next orbit frame hits without restaging.
      EXPECT_TRUE(cache.lookup_or_admit(0, {1, 0}, 30));
      EXPECT_TRUE(cache.lookup_or_admit(0, {1, 1}, 30));
    } else {
      EXPECT_FALSE(hot_resident) << "recency-only cache should have thrashed";
    }
  }
}

TEST(ArcCache, PrefetchLandsSpeculativeInT1AndDemandReArmsIt) {
  BrickCache cache = arc_cache(1000);
  bool admitted = false;
  EXPECT_TRUE(cache.prefetch(0, {1, 0}, 100, &admitted));
  EXPECT_TRUE(admitted);
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.stats().prefetch_admissions, 1u);
  EXPECT_EQ(cache.stats().bytes_prefetched, 100u);
  EXPECT_EQ(cache.stats().misses, 0u);  // speculative, not demand
  EXPECT_EQ(cache.arc_probe(0).t1_entries, 1u);

  // First demand touch: a hit (the prefetch paid the staging), but it
  // only re-arms the brick as a once-demanded T1 entry — a never
  // re-demanded brick must not squat in the frequent list.
  EXPECT_TRUE(cache.lookup_or_admit(0, {1, 0}, 100));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().t1_hits, 1u);
  EXPECT_EQ(cache.stats().bytes_saved, 100u);
  EXPECT_EQ(cache.arc_probe(0).t1_entries, 1u);
  EXPECT_EQ(cache.arc_probe(0).t2_entries, 0u);

  // Second demand touch promotes to T2 like any re-demanded brick.
  EXPECT_TRUE(cache.lookup_or_admit(0, {1, 0}, 100));
  EXPECT_EQ(cache.arc_probe(0).t2_entries, 1u);
  EXPECT_EQ(cache.stats().hits, cache.stats().t1_hits + cache.stats().t2_hits);

  // A repeated prefetch of a resident brick is a refresh: no counters.
  admitted = true;
  EXPECT_TRUE(cache.prefetch(0, {1, 0}, 100, &admitted));
  EXPECT_FALSE(admitted);
  EXPECT_EQ(cache.stats().prefetch_admissions, 1u);
}

TEST(ArcCache, EvictedSpeculativeBrickLeavesNoGhost) {
  BrickCache cache = arc_cache(100);
  bool admitted = false;
  EXPECT_TRUE(cache.prefetch(0, {1, 0}, 60, &admitted));
  EXPECT_TRUE(admitted);
  // Demand traffic displaces the never-demanded speculative brick.
  cache.lookup_or_admit(0, {2, 0}, 60);
  EXPECT_FALSE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.arc_probe(0).b1_entries, 0u)
      << "speculative eviction must not pollute the demand ghost history";
  // Its later demand is a plain cold miss: no ghost hit, p untouched.
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 0}, 60));
  EXPECT_EQ(cache.stats().b1_ghost_hits, 0u);
  EXPECT_DOUBLE_EQ(cache.arc_probe(0).p, 0.0);
}

TEST(ArcCache, PrefetchOfGhostKeyDropsGhostWithoutSteeringP) {
  BrickCache cache = arc_cache(100);
  cache.lookup_or_admit(0, {1, 9}, 30);  // hot ballast ...
  cache.lookup_or_admit(0, {1, 9}, 30);  // ... into T2 so B1 has room
  cache.lookup_or_admit(0, {1, 0}, 30);  // X
  cache.lookup_or_admit(0, {1, 1}, 30);  // Y
  cache.lookup_or_admit(0, {1, 2}, 30);  // Z evicts X -> B1
  EXPECT_FALSE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.arc_probe(0).b1_entries, 1u);
  // The prefetcher restages X speculatively: its ghost disappears (X
  // is resident again) but p must not move — a prefetch touch is not
  // demand evidence, so it neither counts as a ghost hit nor steers p.
  bool admitted = false;
  EXPECT_TRUE(cache.prefetch(0, {1, 0}, 30, &admitted));
  EXPECT_TRUE(admitted);
  EXPECT_TRUE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.stats().b1_ghost_hits, 0u);
  EXPECT_EQ(cache.stats().b2_ghost_hits, 0u);
  EXPECT_DOUBLE_EQ(cache.arc_probe(0).p, 0.0);
}

TEST(ArcCache, InvalidateVolumePurgesResidentsAndGhosts) {
  BrickCache cache = arc_cache(100);
  cache.lookup_or_admit(0, {2, 9}, 40);  // hot ballast ...
  cache.lookup_or_admit(0, {2, 9}, 40);  // ... into T2 so B1 has room
  cache.lookup_or_admit(0, {1, 0}, 30);  // volume 1
  cache.lookup_or_admit(0, {1, 1}, 30);  // volume 1
  cache.lookup_or_admit(0, {2, 0}, 30);  // volume 2 evicts {1,0} -> B1
  EXPECT_FALSE(cache.resident(0, {1, 0}));
  EXPECT_EQ(cache.arc_probe(0).b1_entries, 1u);

  cache.invalidate_volume(1);
  EXPECT_EQ(cache.arc_probe(0).b1_entries, 0u);
  EXPECT_FALSE(cache.resident(0, {1, 1}));
  EXPECT_TRUE(cache.resident(0, {2, 0}));

  // A reused (volume, generation) id re-registers under a FRESH id in
  // the service; but even a raw re-demand of the retired key must read
  // as a cold miss — a stale ghost hit would steer p with evidence
  // from a dead key space.
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 0}, 60));
  EXPECT_EQ(cache.stats().b1_ghost_hits, 0u);
  EXPECT_EQ(cache.stats().b2_ghost_hits, 0u);
  EXPECT_DOUBLE_EQ(cache.arc_probe(0).p, 0.0);
}

TEST(ArcCache, OversizedBrickRejectedOnEveryPath) {
  BrickCache cache = arc_cache(100);
  cache.lookup_or_admit(0, {1, 0}, 60);
  EXPECT_FALSE(cache.lookup_or_admit(0, {1, 99}, 200));
  bool admitted = true;
  EXPECT_FALSE(cache.prefetch(0, {1, 98}, 200, &admitted));
  EXPECT_FALSE(admitted);
  EXPECT_EQ(cache.stats().rejected_oversized, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.resident(0, {1, 0}));  // nothing was displaced
}

TEST(ArcCache, TelemetryReconcilesAcrossListsAndShards) {
  BrickCache cache = arc_cache(100, /*gpus=*/2);
  for (int gpu = 0; gpu < 2; ++gpu) {
    // Hot pair into T2, churn through the recency side, then one B1
    // ghost hit (nudging this shard's p) and one T2 hit.
    for (int touch = 0; touch < 2; ++touch) {
      cache.lookup_or_admit(gpu, {1, 200}, 30);
      cache.lookup_or_admit(gpu, {1, 201}, 30);
    }
    cache.lookup_or_admit(gpu, {1, 0}, 20);
    cache.lookup_or_admit(gpu, {1, 1}, 20);
    cache.lookup_or_admit(gpu, {1, 2}, 20);  // evicts {1,0} -> B1
    cache.lookup_or_admit(gpu, {1, 0}, 20);  // B1 ghost hit
    cache.lookup_or_admit(gpu, {1, 200}, 30);  // T2 hit
  }
  const BrickCacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, stats.t1_hits + stats.t2_hits);
  EXPECT_EQ(stats.t1_hits, 4u);  // two hot promotions per shard
  EXPECT_EQ(stats.t2_hits, 2u);
  EXPECT_EQ(stats.b1_ghost_hits, 2u);
  EXPECT_LE(stats.b1_ghost_hits + stats.b2_ghost_hits, stats.misses);
  // The p gauge is the exact sum of the per-shard targets, and
  // reset_stats keeps it (counters reset, live state does not).
  double p_sum = 0.0;
  for (int gpu = 0; gpu < 2; ++gpu) p_sum += cache.arc_probe(gpu).p;
  EXPECT_DOUBLE_EQ(stats.arc_p_bytes, p_sum);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().arc_p_bytes, p_sum);
  cache.clear();
  EXPECT_DOUBLE_EQ(cache.stats().arc_p_bytes, 0.0);
}

TEST(CachePolicyPlumbing, ServiceConfigSelectsThePolicy) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
  ServiceConfig config;
  config.cache_policy = CachePolicy::Arc;
  config.cache_capacity_override = 1 << 20;
  RenderService service(cluster, config);
  ASSERT_NE(service.cache(), nullptr);
  EXPECT_EQ(service.cache()->policy(), CachePolicy::Arc);
}

TEST(CachePolicyPlumbing, FrontendAppliesPerShardOverrides) {
  FrontendConfig config;
  config.shards = 2;
  config.gpus_per_shard = 2;
  config.service.cache_policy = CachePolicy::Lru;
  config.cache_policy_per_shard = {CachePolicy::Lru, CachePolicy::Arc};
  ServiceFrontend frontend(config);
  ASSERT_NE(frontend.shard(0).cache(), nullptr);
  ASSERT_NE(frontend.shard(1).cache(), nullptr);
  EXPECT_EQ(frontend.shard(0).cache()->policy(), CachePolicy::Lru);
  EXPECT_EQ(frontend.shard(1).cache()->policy(), CachePolicy::Arc);
}

TEST(CachePolicyPlumbing, FrontendRejectsMisSizedOverrideList) {
  FrontendConfig config;
  config.shards = 2;
  config.cache_policy_per_shard = {CachePolicy::Arc};
  EXPECT_THROW(ServiceFrontend frontend(config), vrmr::CheckError);
}

// Service-level scan resistance: the bench's adversarial scenario in
// miniature — an interactive session re-rendering one small volume
// while a batch session streams distinct over-budget volumes through
// the same shard. Arc must keep the interactive demand stream hitting.
TEST(CachePolicyService, InteractiveWorkingSetSurvivesBatchScanUnderArc) {
  std::uint64_t hits_by_policy[2] = {0, 0};
  std::uint64_t misses_by_policy[2] = {0, 0};
  for (const CachePolicy policy : {CachePolicy::Lru, CachePolicy::Arc}) {
    const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
    std::vector<volren::Volume> scans;
    for (int f = 0; f < 3; ++f)
      scans.push_back(volren::datasets::supernova({32, 32, 32}));

    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
    ServiceConfig config;
    config.cache_policy = policy;
    // Budget: the 16^3 volume's bricks fit, one 32^3 scan does not.
    config.cache_capacity_override = 3 * 16 * 16 * 16 * sizeof(float);
    RenderService service(cluster, config);

    Session live = service.open_session("live", Priority::Interactive);
    Session batch = service.open_session("scan", Priority::Batch);

    volren::RenderOptions live_options;
    live_options.image_width = live_options.image_height = 32;
    live_options.target_bricks = 2;
    volren::RenderOptions scan_options = live_options;
    scan_options.target_bricks = 8;

    int live_frames = 2;
    live.on_frame([&](const FrameRecord& frame) {
      if (frame.frame_id != 1) return;  // warmed up: release the scan
      for (volren::Volume& volume : scans) {
        batch.submit({&volume, scan_options, 0.0});
      }
    });
    batch.on_frame([&](const FrameRecord&) {
      if (live_frames < 5) {
        ++live_frames;
        live.submit({&live_volume, live_options, 0.0});
      }
    });
    live.submit({&live_volume, live_options, 0.0});
    live.submit({&live_volume, live_options, 0.0});
    service.drain();

    const SessionStats stats = live.stats();
    hits_by_policy[policy == CachePolicy::Arc] = stats.cache_hits;
    misses_by_policy[policy == CachePolicy::Arc] = stats.cache_misses;
  }
  // Arc: only the first frame misses. Lru: every post-scan frame
  // restages the working set the scan just flushed.
  EXPECT_GT(hits_by_policy[1], hits_by_policy[0]);
  EXPECT_LT(misses_by_policy[1], misses_by_policy[0]);
  EXPECT_GE(static_cast<double>(hits_by_policy[1]),
            1.5 * static_cast<double>(hits_by_policy[0]));
}

}  // namespace
}  // namespace vrmr::service
