// ServiceFrontend tests: lazy shard placement (least outstanding cost,
// brick-affinity stickiness), session pinning, cross-shard aggregation,
// deterministic replay, and near-linear throughput scaling.

#include "service/frontend.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "volren/datasets.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

RenderRequest request_for(const volren::Volume& volume, double arrival) {
  RenderRequest r;
  r.volume = &volume;
  r.options = tiny_options();
  r.arrival_s = arrival;
  return r;
}

FrontendConfig small_frontend(int shards) {
  FrontendConfig config;
  config.shards = shards;
  config.gpus_per_shard = 2;
  config.service.policy = SchedulingPolicy::RoundRobin;
  return config;
}

TEST(ServiceFrontend, PlacementIsDeferredUntilFirstSubmit) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceFrontend frontend(small_frontend(2));
  Session s = frontend.open_session("lazy");
  EXPECT_EQ(frontend.shard_of(s), -1);
  EXPECT_EQ(s.stats().frames, 0);  // queryable even before placement
  s.submit(request_for(volume, 0.0));
  EXPECT_GE(frontend.shard_of(s), 0);
}

TEST(ServiceFrontend, LeastOutstandingCostBalancesSessions) {
  // Four equal sessions submitting full workloads one after another
  // spread 2-and-2 across two shards: each submit raises its shard's
  // outstanding cost, so the next session goes to the lighter shard.
  const volren::Volume va = volren::datasets::skull({24, 24, 24});
  const volren::Volume vb = volren::datasets::skull({24, 24, 24});
  const volren::Volume vc = volren::datasets::skull({24, 24, 24});
  const volren::Volume vd = volren::datasets::skull({24, 24, 24});
  ServiceFrontend frontend(small_frontend(2));
  std::vector<int> shards;
  for (const volren::Volume* v : {&va, &vb, &vc, &vd}) {
    Session s = frontend.open_session("s");
    s.submit_orbit(*v, tiny_options(), 4, 0.0, 0.0);
    shards.push_back(frontend.shard_of(s));
  }
  // First session ties to shard 0; second sees shard 0 loaded; equal
  // loads tie back to 0; fourth sees 1 lighter again.
  EXPECT_EQ(shards, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(frontend.shard(0).num_sessions(), 2);
  EXPECT_EQ(frontend.shard(1).num_sessions(), 2);
}

TEST(ServiceFrontend, BrickAffinityOverridesLoad) {
  const volren::Volume shared = volren::datasets::skull({24, 24, 24});
  const volren::Volume other = volren::datasets::supernova({24, 24, 24});
  ServiceFrontend frontend(small_frontend(2));

  // Warm `shared` on shard 0.
  Session first = frontend.open_session("first");
  first.submit_orbit(shared, tiny_options(), 2, 0.0, 0.0);
  ASSERT_EQ(frontend.shard_of(first), 0);
  frontend.drain();
  ASSERT_TRUE(frontend.shard(0).volume_warm(&shared));

  // Load shard 0 with queued (undrained) work so pure least-cost would
  // send the next session to shard 1...
  Session filler = frontend.open_session("filler");
  filler.submit_orbit(other, tiny_options(), 4, 0.0, 0.0);
  ASSERT_EQ(frontend.shard_of(filler), 0);  // both idle -> tie to 0
  ASSERT_GT(frontend.shard(0).outstanding_cost_s(),
            frontend.shard(1).outstanding_cost_s());

  // ...but a session for `shared` must stick to shard 0, where its
  // bricks are already resident.
  Session returning = frontend.open_session("returning");
  returning.submit(request_for(shared, 0.0));
  EXPECT_EQ(frontend.shard_of(returning), 0);

  frontend.drain();
  // The returning session's frame hit the warm bricks.
  const SessionStats returned = returning.stats();
  EXPECT_EQ(returned.frames, 1);
  EXPECT_GT(returned.cache_hits, 0u);
  EXPECT_EQ(returned.cache_misses, 0u);
}

TEST(ServiceFrontend, SessionStaysOnItsShardAcrossSubmits) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const volren::Volume decoy = volren::datasets::supernova({24, 24, 24});
  ServiceFrontend frontend(small_frontend(2));
  Session s = frontend.open_session("pinned");
  s.submit(request_for(volume, 0.0));
  const int home = frontend.shard_of(s);
  // Pile load onto the home shard: the session must not migrate.
  Session heavy = frontend.open_session("heavy");
  heavy.submit_orbit(decoy, tiny_options(), 6, 0.0, 0.0);
  s.submit(request_for(volume, 0.0));
  s.submit(request_for(volume, 0.0));
  EXPECT_EQ(frontend.shard_of(s), home);
  frontend.drain();
  EXPECT_EQ(s.stats().frames, 3);
}

TEST(ServiceFrontend, CallbacksDeliverThroughTheShard) {
  const volren::Volume va = volren::datasets::skull({16, 16, 16});
  const volren::Volume vb = volren::datasets::supernova({16, 16, 16});
  ServiceFrontend frontend(small_frontend(2));
  // A first session occupies shard 0 so "cb" lands on shard 1 — where
  // its shard-local index (0) differs from its frontend index (1).
  Session first = frontend.open_session("first");
  first.submit(request_for(va, 0.0));
  Session s = frontend.open_session("cb");
  int delivered = 0;
  // Registered before placement: the callback must survive the handoff
  // to whichever shard the session lands on, and records must carry
  // the frontend-wide session index (shard-local indices collide).
  s.on_frame([&](const FrameRecord& f) {
    ++delivered;
    EXPECT_EQ(f.session, 1);
    EXPECT_GE(f.finish_s, f.start_s);
  });
  s.submit(request_for(vb, 0.0));
  s.submit(request_for(vb, 0.0));
  ASSERT_EQ(frontend.shard_of(s), 1);
  frontend.drain();
  EXPECT_EQ(delivered, 2);
}

TEST(ServiceFrontend, AggregatesAcrossShards) {
  const volren::Volume va = volren::datasets::skull({24, 24, 24});
  const volren::Volume vb = volren::datasets::supernova({24, 24, 24});
  ServiceFrontend frontend(small_frontend(2));
  Session a = frontend.open_session("a");
  Session b = frontend.open_session("b");
  a.submit_orbit(va, tiny_options(), 3, 0.0, 0.0);
  b.submit_orbit(vb, tiny_options(), 3, 0.0, 0.0);
  frontend.drain();

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.frames_total, 6);
  ASSERT_EQ(stats.shards.size(), 2u);
  int shard_frames = 0;
  double max_makespan = 0.0;
  for (const ShardStats& shard : stats.shards) {
    shard_frames += shard.service.frames_total;
    max_makespan = std::max(max_makespan, shard.service.makespan_s);
    EXPECT_EQ(shard.sessions, 1);
  }
  EXPECT_EQ(shard_frames, 6);
  EXPECT_DOUBLE_EQ(stats.makespan_s, max_makespan);
  EXPECT_GT(stats.fps, 0.0);
  // Each session's frames 2..3 hit its own warm bricks.
  EXPECT_GT(stats.cache_hit_rate, 0.0);
}

TEST(ServiceFrontend, InvalidateVolumeReachesEveryShard) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceFrontend frontend(small_frontend(2));
  Session s = frontend.open_session("s");
  s.submit_orbit(volume, tiny_options(), 2, 0.0, 0.0);
  frontend.drain();
  const int home = frontend.shard_of(s);
  ASSERT_TRUE(frontend.shard(home).volume_warm(&volume));
  frontend.invalidate_volume(&volume);
  for (int i = 0; i < frontend.num_shards(); ++i)
    EXPECT_FALSE(frontend.shard(i).volume_warm(&volume));
}

TEST(ServiceFrontend, RejectedFirstSubmitDoesNotPinTheSession) {
  // A volume reshaped without invalidation: the shard's registration
  // guard rejects the submit BEFORE the session is pinned, so after the
  // caller invalidates, the retry places (and serves) normally.
  ServiceFrontend frontend(small_frontend(2));
  std::optional<volren::Volume> slot;
  slot.emplace(volren::datasets::skull({24, 24, 24}));
  Session first = frontend.open_session("first");
  first.submit(request_for(*slot, 0.0));
  frontend.drain();  // shard 0 now holds the 24^3 registration, warm

  slot.emplace(volren::datasets::skull({16, 16, 16}));  // same address
  Session reuse = frontend.open_session("reuse");
  EXPECT_THROW(reuse.submit(request_for(*slot, 0.0)), vrmr::CheckError);
  EXPECT_EQ(frontend.shard_of(reuse), -1);  // not pinned by the reject

  frontend.invalidate_volume(&*slot);
  reuse.submit(request_for(*slot, 0.0));
  EXPECT_GE(frontend.shard_of(reuse), 0);
  frontend.drain();
  EXPECT_EQ(reuse.stats().frames, 1);
}

TEST(ServiceFrontend, ReshapedVolumeRejectedEvenWhenItsShardWentCold) {
  // With no warm bricks anywhere (cache disabled), affinity cannot
  // route the reuse back to the shard holding the stale registration —
  // the guard must still fire rather than silently accept the reshaped
  // volume on a different shard.
  FrontendConfig config = small_frontend(2);
  config.service.enable_brick_cache = false;
  ServiceFrontend frontend(config);
  std::optional<volren::Volume> slot;
  slot.emplace(volren::datasets::skull({24, 24, 24}));
  Session first = frontend.open_session("first");
  first.submit(request_for(*slot, 0.0));
  frontend.drain();

  slot.emplace(volren::datasets::skull({16, 16, 16}));  // same address
  Session reuse = frontend.open_session("reuse");
  EXPECT_THROW(reuse.submit(request_for(*slot, 0.0)), vrmr::CheckError);
  EXPECT_EQ(frontend.shard_of(reuse), -1);
  frontend.invalidate_volume(&*slot);
  reuse.submit(request_for(*slot, 0.0));
  frontend.drain();
  EXPECT_EQ(reuse.stats().frames, 1);
}

TEST(ServiceFrontend, DeterministicReplay) {
  // Two identical frontend runs produce byte-identical frame schedules
  // (placement, per-shard ordering and DES timing all replay).
  auto run_once = [] {
    const volren::Volume va = volren::datasets::skull({24, 24, 24});
    const volren::Volume vb = volren::datasets::supernova({24, 24, 24});
    const volren::Volume vc = volren::datasets::skull({16, 16, 16});
    FrontendConfig config = small_frontend(2);
    config.service.policy = SchedulingPolicy::ShortestJobFirst;
    ServiceFrontend frontend(config);
    Session a = frontend.open_session("a", Priority::Interactive);
    Session b = frontend.open_session("b");
    Session c = frontend.open_session("c");
    a.submit_orbit(va, tiny_options(), 4, 0.0, 0.02);
    b.submit_orbit(vb, tiny_options(), 4, 0.0, 0.0);
    c.submit_orbit(vc, tiny_options(), 4, 0.01, 0.03);
    frontend.drain();
    return frontend.stats();
  };
  const FrontendStats first = run_once();
  const FrontendStats second = run_once();
  ASSERT_EQ(first.shards.size(), second.shards.size());
  for (std::size_t s = 0; s < first.shards.size(); ++s) {
    const ServiceStats& fs = first.shards[s].service;
    const ServiceStats& ss = second.shards[s].service;
    EXPECT_EQ(first.shards[s].sessions, second.shards[s].sessions);
    ASSERT_EQ(fs.frames.size(), ss.frames.size());
    for (std::size_t i = 0; i < fs.frames.size(); ++i) {
      EXPECT_EQ(fs.frames[i].session, ss.frames[i].session);
      EXPECT_EQ(fs.frames[i].frame_id, ss.frames[i].frame_id);
      EXPECT_EQ(fs.frames[i].start_s, ss.frames[i].start_s);    // bitwise
      EXPECT_EQ(fs.frames[i].finish_s, ss.frames[i].finish_s);  // bitwise
      EXPECT_EQ(fs.frames[i].cache_hits, ss.frames[i].cache_hits);
    }
  }
  EXPECT_EQ(first.makespan_s, second.makespan_s);
  EXPECT_EQ(first.fps, second.fps);
}

TEST(ServiceFrontend, TwoShardsNearlyDoubleAggregateThroughput) {
  // Four equal saturated sessions; the same total work on 2 shards (2x
  // the hardware, balanced 2-and-2) must finish in nearly half the
  // simulated time — the sharding acceptance bar (>= 1.7x).
  auto fps_with_shards = [](int shards) {
    const Int3 dims{24, 24, 24};
    std::vector<volren::Volume> volumes;
    for (int i = 0; i < 4; ++i)
      volumes.push_back(volren::datasets::supernova(dims));
    ServiceFrontend frontend(small_frontend(shards));
    for (volren::Volume& v : volumes) {
      Session s = frontend.open_session("s");
      s.submit_orbit(v, tiny_options(), 4, 0.0, 0.0);
    }
    frontend.drain();
    return frontend.stats().fps;
  };
  const double one = fps_with_shards(1);
  const double two = fps_with_shards(2);
  EXPECT_GE(two, 1.7 * one);
}

}  // namespace
}  // namespace vrmr::service
