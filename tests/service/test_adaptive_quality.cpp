// Adaptive quality of service (src/lod + the service's SLO controller):
// LOD-0 planning is bit-identical to the pyramid-free path across the
// seed scenes and both barrier modes, occupancy culling drops provably
// invisible bricks without changing a pixel, per-request/per-session
// quality knobs thread through admission, and the SLO controller's
// degrade -> refine sequencing delivers previews before their
// full-quality refinements with linked FrameRecords.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "lod/pyramid.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"
#include "volren/renderer.hpp"

namespace vrmr::service {
namespace {

/// Alpha zero on [0, 0.5]: values below the knee are provably invisible.
volren::TransferFunction low_cut_tf() {
  return volren::TransferFunction(
      {{0.0f, Vec4{0, 0, 0, 0}},
       {0.5f, Vec4{0, 0, 0, 0}},
       {0.6f, Vec4{1, 1, 1, 0.4f}},
       {1.0f, Vec4{1, 1, 1, 0.9f}}});
}

/// Two-zone field whose 8 low-corner bricks (16^3 bricking) are wholly
/// below the TF knee — provably cullable.
volren::Volume octant_volume() {
  return volren::Volume::procedural("octant", {48, 48, 48}, [](Int3 p) {
    return (p.x < 33 && p.y < 33 && p.z < 33) ? 0.1f : 0.8f;
  });
}

struct Scene {
  std::string name;
  volren::Volume volume;
  volren::RenderOptions options;
};

std::vector<Scene> seed_scenes() {
  std::vector<Scene> scenes;
  auto base = [] {
    volren::RenderOptions options;
    options.image_width = 64;
    options.image_height = 64;
    return options;
  };
  {
    Scene s{"skull", volren::datasets::skull({48, 48, 48}), base()};
    s.options.transfer = volren::TransferFunction::bone();
    scenes.push_back(std::move(s));
  }
  {
    Scene s{"supernova", volren::datasets::supernova({40, 40, 40}), base()};
    s.options.transfer = volren::TransferFunction::fire();
    s.options.azimuth = 1.3f;
    scenes.push_back(std::move(s));
  }
  {
    Scene s{"plume", volren::datasets::plume({24, 24, 96}), base()};
    s.options.transfer = volren::TransferFunction::mist();
    s.options.elevation = 0.1f;
    scenes.push_back(std::move(s));
  }
  {
    Scene s{"skull_gray", volren::datasets::skull({32, 32, 32}), base()};
    s.options.transfer = volren::TransferFunction::grayscale_ramp();
    s.options.azimuth = 2.4f;
    s.options.elevation = -0.2f;
    scenes.push_back(std::move(s));
  }
  return scenes;
}

TEST(AdaptiveQuality, LodZeroPlanningIsBitIdenticalToThePyramidFreePath) {
  // The pixel-identity guarantee the whole subsystem rests on: with a
  // pyramid supplied but max_lod == 0 and quality == 1, plan_frame must
  // reproduce the 5-arg overload exactly — every seed scene, both
  // barrier modes, images AND simulated timings bit-identical.
  for (Scene& scene : seed_scenes()) {
    for (const mr::BarrierMode mode :
         {mr::BarrierMode::Global, mr::BarrierMode::PerReducer}) {
      scene.options.barrier_mode = mode;
      auto run = [&](bool with_pyramid) {
        sim::Engine engine;
        cluster::Cluster cluster(engine,
                                 cluster::ClusterConfig::with_total_gpus(4));
        const volren::BrickLayout layout =
            volren::choose_layout(scene.volume, scene.options, 4);
        std::unique_ptr<volren::PlannedFrame> frame;
        if (with_pyramid) {
          const lod::LodPyramid pyramid(scene.volume, layout);
          volren::AdaptiveQuality aq;
          aq.pyramid = &pyramid;
          frame = volren::plan_frame(cluster, scene.volume, scene.options,
                                     mr::StagingHook{}, layout, aq);
          EXPECT_EQ(frame->max_level(), 0);
          EXPECT_EQ(frame->occupancy_culled(), 0);
        } else {
          frame = volren::plan_frame(cluster, scene.volume, scene.options,
                                     mr::StagingHook{}, layout);
        }
        frame->plan().run_to_completion();
        return frame->finish();
      };
      const volren::RenderResult without = run(false);
      const volren::RenderResult with = run(true);
      const volren::ImageDiff diff =
          volren::compare_images(without.image, with.image);
      EXPECT_EQ(diff.max_abs, 0.0)
          << scene.name << " " << mr::to_string(mode);
      EXPECT_EQ(without.stats.runtime_s, with.stats.runtime_s);
      EXPECT_EQ(without.stats.total_samples, with.stats.total_samples);
      EXPECT_EQ(without.stats.bytes_h2d, with.stats.bytes_h2d);
    }
  }
}

TEST(AdaptiveQuality, CoarseLevelsReduceWorkWhenRequested) {
  // max_lod > 0 with a pyramid: the frame renders from coarse bricks —
  // strictly fewer samples and staged bytes, and the planner reports
  // the level it used.
  const volren::Volume volume = volren::datasets::skull({48, 48, 48});
  volren::RenderOptions options;
  options.image_width = 64;
  options.image_height = 64;
  auto run = [&](int max_lod) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(4));
    const volren::BrickLayout layout = volren::choose_layout(volume, options, 4);
    const lod::LodPyramid pyramid(volume, layout);
    volren::RenderOptions opt = options;
    opt.max_lod = max_lod;
    volren::AdaptiveQuality aq;
    aq.pyramid = &pyramid;
    auto frame = volren::plan_frame(cluster, volume, opt, mr::StagingHook{},
                                    layout, aq);
    EXPECT_EQ(frame->max_level(), max_lod);
    frame->plan().run_to_completion();
    return frame->finish();
  };
  const volren::RenderResult full = run(0);
  const volren::RenderResult coarse = run(1);
  EXPECT_LT(coarse.stats.total_samples, full.stats.total_samples);
  EXPECT_LT(coarse.stats.bytes_h2d, full.stats.bytes_h2d);
  EXPECT_LT(coarse.stats.runtime_s, full.stats.runtime_s);
}

TEST(AdaptiveQuality, OccupancyCullingIsBitIdenticalAndObservable) {
  const volren::Volume volume = octant_volume();
  volren::RenderOptions options;
  options.image_width = 48;
  options.image_height = 48;
  options.brick_size = 16;  // 27 bricks; the 8 low-corner ones cullable
  options.transfer = low_cut_tf();

  auto run = [&](bool culling) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
    ServiceConfig config;
    config.enable_occupancy_culling = culling;
    config.keep_images = true;
    RenderService service(cluster, config);
    Session s = service.open_session("orbit");
    s.submit_orbit(volume, options, 3, 0.0, 0.0);
    service.drain();
    return service.stats();
  };

  const ServiceStats off = run(false);
  const ServiceStats on = run(true);
  ASSERT_EQ(off.frames.size(), 3u);
  ASSERT_EQ(on.frames.size(), 3u);
  for (std::size_t f = 0; f < off.frames.size(); ++f) {
    const volren::ImageDiff diff =
        volren::compare_images(off.frames[f].image, on.frames[f].image);
    EXPECT_EQ(diff.max_abs, 0.0) << "frame " << f;
  }

  // 8 bricks dropped before staging, every frame.
  EXPECT_EQ(on.bricks_occupancy_culled, 3u * 8u);
  EXPECT_EQ(off.bricks_occupancy_culled, 0u);
  // The classification was computed once and memoized across frames.
  EXPECT_EQ(on.classifications_built, 1u);
  EXPECT_EQ(off.classifications_built, 0u);
  // Culled bricks were never demanded from the cache.
  EXPECT_LT(on.frames[0].cache_misses, off.frames[0].cache_misses);
  EXPECT_LT(on.frames[0].stats.bytes_h2d, off.frames[0].stats.bytes_h2d);
}

TEST(AdaptiveQuality, RequestAndSessionQualityKnobsThreadThroughAdmission) {
  const volren::Volume volume = volren::datasets::skull({48, 48, 48});
  volren::RenderOptions options;
  options.image_width = 64;
  options.image_height = 64;
  options.brick_size = 24;

  auto profile_named = [](std::string name) {
    SessionProfile profile;
    profile.name = std::move(name);
    return profile;
  };
  auto serve_one = [&](volren::RenderOptions opt, SessionProfile profile,
                       bool enable_lod) {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
    ServiceConfig config;
    config.enable_lod = enable_lod;
    RenderService service(cluster, config);
    Session s = service.open_session(std::move(profile));
    RenderRequest request;
    request.volume = &volume;
    request.options = opt;
    s.submit(request);
    service.drain();
    return service.frames().back();
  };

  // RenderOptions::max_lod serves the whole frame coarse and the record
  // says so.
  volren::RenderOptions coarse = options;
  coarse.max_lod = 1;
  EXPECT_EQ(serve_one(coarse, profile_named("r"), true).lod, 1);
  // ...unless LOD is disabled service-wide.
  EXPECT_EQ(serve_one(coarse, profile_named("r"), false).lod, 0);

  // SessionProfile::quality min-composes with the request: a far-away
  // view under an aggressive session floor renders its small-footprint
  // bricks from coarse levels.
  volren::RenderOptions far = options;
  far.distance = 8.0f;
  SessionProfile cheap = profile_named("cheap");
  cheap.quality = 0.02f;
  EXPECT_GT(serve_one(far, cheap, true).lod, 0);
  // The same request on a full-quality session stays at level 0.
  EXPECT_EQ(serve_one(far, profile_named("full"), true).lod, 0);
}

TEST(AdaptiveQuality, SloDegradesPreviewsAndRefinesThemInOrder) {
  const volren::Volume live_volume = volren::datasets::skull({32, 32, 32});
  const volren::Volume batch_volume = volren::datasets::supernova({32, 32, 32});
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  options.brick_size = 16;

  constexpr int kLive = 4;
  constexpr int kBatch = 6;

  // Reference run: no SLO, every interactive frame full quality.
  std::map<std::uint64_t, volren::Image> full_images;
  {
    sim::Engine engine;
    cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
    ServiceConfig config;
    config.keep_images = true;
    RenderService service(cluster, config);
    Session live = service.open_session("live", Priority::Interactive);
    Session batch = service.open_session("batch", Priority::Batch);
    live.submit_orbit(live_volume, options, kLive, 0.0, 0.001);
    batch.submit_orbit(batch_volume, options, kBatch, 0.0, 0.0);
    service.drain();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.frames_degraded, 0u);
    EXPECT_EQ(stats.refinements_enqueued, 0u);
    for (const FrameRecord& f : service.frames()) {
      if (f.session == 0) full_images.emplace(f.frame_id, f.image);
      EXPECT_EQ(f.lod, 0);
      EXPECT_EQ(f.refines_frame_id, -1);
    }
  }

  // SLO run: an unmeetable deadline degrades every interactive frame.
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
  ServiceConfig config;
  config.interactive_slo_s = 1e-6;
  config.keep_images = true;
  RenderService service(cluster, config);
  Session live = service.open_session("live", Priority::Interactive);
  Session batch = service.open_session("batch", Priority::Batch);
  std::vector<FrameRecord> delivered;  // client-visible delivery order
  live.on_frame([&delivered](const FrameRecord& f) { delivered.push_back(f); });
  live.submit_orbit(live_volume, options, kLive, 0.0, 0.001);
  batch.submit_orbit(batch_volume, options, kBatch, 0.0, 0.0);
  const std::uint64_t layouts_after_submit = service.layouts_built();
  service.drain();
  const ServiceStats stats = service.stats();

  // Every interactive frame degraded; every preview got exactly one
  // refinement, and every refinement was served.
  EXPECT_EQ(stats.frames_degraded, static_cast<std::uint64_t>(kLive));
  EXPECT_EQ(stats.refinements_enqueued, stats.frames_degraded);
  EXPECT_EQ(stats.refinements_served, stats.refinements_enqueued);
  EXPECT_EQ(stats.frames_total, kLive * 2 + kBatch);
  // Refinements reuse the preview's memoized layout — no extra builds.
  EXPECT_EQ(service.layouts_built(), layouts_after_submit);

  // The client saw previews + refinements through its own callback, in
  // an order where no refinement precedes its preview, with the records
  // linked and LOD-tagged.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(2 * kLive));
  std::map<std::uint64_t, std::size_t> seen_at;
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    const FrameRecord& f = delivered[i];
    EXPECT_EQ(f.session, 0);  // delivered as the client's, not "#refine"
    seen_at.emplace(f.frame_id, i);
    if (f.refines_frame_id >= 0) {
      EXPECT_EQ(f.lod, 0);  // refinements are full quality...
      const auto preview = seen_at.find(
          static_cast<std::uint64_t>(f.refines_frame_id));
      ASSERT_NE(preview, seen_at.end()) << "refinement before its preview";
      EXPECT_LT(preview->second, i);
      EXPECT_GT(delivered[preview->second].lod, 0);  // ...of a coarse preview
      // ...and pixel-identical to the full-quality render of that view.
      const auto reference = full_images.find(
          static_cast<std::uint64_t>(f.refines_frame_id));
      ASSERT_NE(reference, full_images.end());
      EXPECT_EQ(volren::compare_images(f.image, reference->second).max_abs, 0.0);
    }
  }
}

}  // namespace
}  // namespace vrmr::service
