// Quantum-pipeline tests: brick-boundary preemption (interactive queue
// wait bounded by one brick quantum, not one batch frame), streamed
// tile delivery ordering, overlap-window prefetch of orbit-predicted
// bricks, deterministic replay of the preemptive schedule, scheduler
// tie-breaking by frame_id, and online cost-model calibration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "volren/datasets.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

RenderRequest request_for(const volren::Volume& volume, double arrival,
                          volren::RenderOptions options = tiny_options()) {
  RenderRequest r;
  r.volume = &volume;
  r.options = options;
  r.arrival_s = arrival;
  return r;
}

/// The mixed workload the preemption bound is measured on: a deep batch
/// backlog of finely-bricked frames plus an interactive session whose
/// frames trickle in while batch frames are mid-render.
struct MixedRun {
  ServiceStats stats;
  std::vector<double> interactive_waits;
  double min_batch_service_s = 0.0;
  double max_batch_service_s = 0.0;
};

MixedRun run_mixed(PipelineMode mode, int backlog_frames) {
  const volren::Volume batch_volume = volren::datasets::supernova({32, 32, 32});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.pipeline = mode;
  Harness h(2, config);
  Session batch = h.service->open_session("batch", Priority::Batch);
  Session live = h.service->open_session("live", Priority::Interactive);
  // Fine bricks (8 per GPU) give the quantum scheduler short quanta —
  // the paper's brick-size knob repurposed as a preemption-granularity
  // knob.
  volren::RenderOptions batch_options = tiny_options();
  batch_options.target_bricks = 16;
  for (int f = 0; f < backlog_frames; ++f)
    batch.submit(request_for(batch_volume, 0.0, batch_options));
  live.submit_orbit(live_volume, tiny_options(), 8, 0.0005, 0.001);
  h.service->drain();

  MixedRun out;
  out.stats = h.service->stats();
  out.min_batch_service_s = std::numeric_limits<double>::infinity();
  for (const FrameRecord& f : out.stats.frames) {
    if (f.session == 0) {
      out.min_batch_service_s = std::min(out.min_batch_service_s, f.service_s());
      out.max_batch_service_s = std::max(out.max_batch_service_s, f.service_s());
    } else {
      out.interactive_waits.push_back(f.queue_wait_s());
    }
  }
  return out;
}

TEST(Preemption, InteractiveWaitBoundedByBrickQuantumNotBatchFrame) {
  const MixedRun mono = run_mixed(PipelineMode::Monolithic, 50);
  const MixedRun quantum = run_mixed(PipelineMode::Quantum, 50);
  ASSERT_EQ(mono.interactive_waits.size(), 8u);
  ASSERT_EQ(quantum.interactive_waits.size(), 8u);

  const double mono_p95 = percentile(mono.interactive_waits, 95.0);
  const double quantum_p95 = percentile(quantum.interactive_waits, 95.0);
  // Monolithic admission bounds the wait by one whole batch frame; the
  // quantum scheduler preempts at the next brick boundary, which must
  // cut the tail by at least 2x (the ISSUE's acceptance bar).
  EXPECT_LT(quantum_p95, mono_p95 / 2.0);
  // Stronger: every interactive wait is shorter than even the fastest
  // whole batch frame — the bound really is sub-frame.
  const double quantum_max =
      *std::max_element(quantum.interactive_waits.begin(),
                        quantum.interactive_waits.end());
  EXPECT_LT(quantum_max, quantum.min_batch_service_s);
  // The scheduler recorded the preemptions it performed.
  EXPECT_GT(quantum.stats.preemptions, 0u);
  EXPECT_EQ(mono.stats.preemptions, 0u);
  // Work conservation: both pipelines served everything.
  EXPECT_EQ(quantum.stats.frames_total, 58);
  EXPECT_EQ(mono.stats.frames_total, 58);
}

TEST(Preemption, PreemptiveScheduleReplaysDeterministically) {
  auto run_once = [] { return run_mixed(PipelineMode::Quantum, 12); };
  const MixedRun first = run_once();
  const MixedRun second = run_once();
  ASSERT_EQ(first.stats.frames.size(), second.stats.frames.size());
  for (std::size_t i = 0; i < first.stats.frames.size(); ++i) {
    EXPECT_EQ(first.stats.frames[i].session, second.stats.frames[i].session);
    EXPECT_EQ(first.stats.frames[i].frame_id, second.stats.frames[i].frame_id);
    EXPECT_EQ(first.stats.frames[i].start_s, second.stats.frames[i].start_s);
    EXPECT_EQ(first.stats.frames[i].finish_s, second.stats.frames[i].finish_s);
    EXPECT_EQ(first.stats.frames[i].tiles, second.stats.frames[i].tiles);
    EXPECT_EQ(first.stats.frames[i].first_tile_s,
              second.stats.frames[i].first_tile_s);
  }
  EXPECT_EQ(first.stats.preemptions, second.stats.preemptions);
  EXPECT_EQ(first.stats.tiles_total, second.stats.tiles_total);
}

TEST(Preemption, SubmitFromTileCallbackPreemptsDuringReduceTail) {
  // During a batch frame's sort/reduce tail every GPU lane is idle and
  // no lane-free event is due — an interactive frame submitted from a
  // tile callback right then must still be admitted immediately (the
  // submit hands the scheduler a fresh event), not at the batch
  // frame's finish.
  const volren::Volume batch_volume = volren::datasets::supernova({32, 32, 32});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session batch = h.service->open_session("batch", Priority::Batch);
  Session live = h.service->open_session("live", Priority::Interactive);
  double submit_clock = -1.0;
  batch.on_tile([&](const TileRecord&) {
    if (submit_clock >= 0.0) return;  // first tile only
    submit_clock = h.engine.now();
    live.submit(request_for(live_volume, 0.0));
  });
  volren::RenderOptions batch_options = tiny_options();
  batch_options.target_bricks = 8;
  batch.submit(request_for(batch_volume, 0.0, batch_options));
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  ASSERT_EQ(stats.frames.size(), 2u);
  const FrameRecord* batch_frame = nullptr;
  const FrameRecord* live_frame = nullptr;
  for (const FrameRecord& f : stats.frames)
    (f.session == 0 ? batch_frame : live_frame) = &f;
  ASSERT_NE(batch_frame, nullptr);
  ASSERT_NE(live_frame, nullptr);
  ASSERT_GE(submit_clock, 0.0);
  // The first tile fires mid-reduce, before the batch frame finishes;
  // the interactive frame starts right there on the idle lanes, not
  // after the batch frame's last tile.
  EXPECT_LT(submit_clock, batch_frame->finish_s);
  EXPECT_DOUBLE_EQ(live_frame->start_s, submit_clock);
  EXPECT_LT(live_frame->start_s, batch_frame->finish_s);
}

TEST(Preemption, PreemptedBatchFrameStillRendersCorrectPixels) {
  // A batch frame split around an interactive burst must produce the
  // same image as an unpreempted run.
  const volren::Volume batch_volume = volren::datasets::supernova({24, 24, 24});
  const volren::Volume live_volume = volren::datasets::skull({16, 16, 16});
  auto render_batch_frame = [&](bool with_interruption) {
    ServiceConfig config;
    config.keep_images = true;
    Harness h(2, config);
    Session batch = h.service->open_session("batch", Priority::Batch);
    volren::RenderOptions options = tiny_options();
    options.target_bricks = 8;
    batch.submit(request_for(batch_volume, 0.0, options));
    if (with_interruption) {
      Session live = h.service->open_session("live", Priority::Interactive);
      live.submit(request_for(live_volume, 1e-5));
    }
    h.service->drain();
    const ServiceStats stats = h.service->stats();
    for (const FrameRecord& f : stats.frames) {
      if (f.session == 0) return f.image;
    }
    ADD_FAILURE() << "batch frame not served";
    return volren::Image{};
  };
  const volren::Image clean = render_batch_frame(false);
  const volren::Image preempted = render_batch_frame(true);
  const volren::ImageDiff diff = volren::compare_images(clean, preempted);
  EXPECT_EQ(diff.max_abs, 0.0);
}

TEST(TileStreaming, TilesPrecedeTheirFrameAndCoverIt) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  for (const PipelineMode mode :
       {PipelineMode::Quantum, PipelineMode::Monolithic}) {
    ServiceConfig config;
    config.pipeline = mode;
    Harness h(4, config);
    Session s = h.service->open_session("stream");

    struct Delivery {
      bool is_tile = false;
      std::uint64_t frame_id = 0;
      int reducer = -1;
      double finish_s = 0.0;
      std::size_t pixels = 0;
    };
    std::vector<Delivery> deliveries;
    s.on_tile([&](const TileRecord& tile) {
      EXPECT_DOUBLE_EQ(tile.finish_s, h.engine.now());
      EXPECT_EQ(tile.tiles_in_frame, 4);
      deliveries.push_back(
          {true, tile.frame_id, tile.reducer, tile.finish_s, tile.pixels.size()});
    });
    s.on_frame([&](const FrameRecord& frame) {
      deliveries.push_back({false, frame.frame_id, -1, frame.finish_s, 0});
    });
    constexpr int kFrames = 3;
    for (int f = 0; f < kFrames; ++f) s.submit(request_for(volume, 0.0));
    h.service->drain();

    // Per frame: exactly 4 tiles, then the frame event; tile times are
    // nondecreasing and never later than the frame's finish.
    std::map<std::uint64_t, int> tiles_seen;
    std::map<std::uint64_t, bool> frame_seen;
    double last_tile_s = 0.0;
    for (const Delivery& d : deliveries) {
      if (d.is_tile) {
        EXPECT_FALSE(frame_seen[d.frame_id])
            << "tile after its frame callback (" << to_string(mode) << ")";
        tiles_seen[d.frame_id] += 1;
        EXPECT_GE(d.finish_s, last_tile_s);
        last_tile_s = d.finish_s;
      } else {
        EXPECT_EQ(tiles_seen[d.frame_id], 4) << to_string(mode);
        frame_seen[d.frame_id] = true;
        EXPECT_GE(d.finish_s, last_tile_s);
      }
    }
    EXPECT_EQ(static_cast<int>(frame_seen.size()), kFrames);

    const ServiceStats stats = h.service->stats();
    EXPECT_EQ(stats.tiles_total, static_cast<std::uint64_t>(4 * kFrames));
    std::size_t covered_pixels = 0;
    for (const Delivery& d : deliveries)
      if (d.is_tile) covered_pixels += d.pixels;
    EXPECT_GT(covered_pixels, 0u);
    for (const FrameRecord& f : stats.frames) {
      EXPECT_EQ(f.tiles, 4);
      EXPECT_GT(f.first_tile_s, f.start_s);
      EXPECT_LE(f.first_tile_s, f.finish_s);
      // Partial-frame delivery: the first tile lands strictly before
      // the frame completes.
      EXPECT_LT(f.first_tile_s, f.finish_s) << to_string(mode);
    }
    ASSERT_EQ(stats.sessions.size(), 1u);
    EXPECT_EQ(stats.sessions[0].tiles_delivered,
              static_cast<std::uint64_t>(4 * kFrames));
  }
}

TEST(Prefetch, OrbitPredictedBricksHitOnTheNextFrame) {
  // Round-robin between an orbit-hinted session A and a batch scan B
  // whose working set evicts A's bricks every other frame. With the
  // overlap-window prefetcher, A's bricks are restaged on lanes B
  // leaves idle during its own frame, so A's later frames hit; without
  // it, every A frame after the first restages cold.
  const volren::Volume a_volume = volren::datasets::skull({24, 24, 24});
  const volren::Volume b_volume = volren::datasets::supernova({48, 48, 48});
  constexpr int kFramesEach = 4;

  auto run = [&](bool prefetch) {
    ServiceConfig config;
    config.policy = SchedulingPolicy::RoundRobin;
    config.enable_prefetch = prefetch;
    // Budget fits either working set alone but not both: B's staging
    // evicts A, and vice versa.
    const auto a_layout = volren::choose_layout(a_volume, tiny_options(), 2);
    const auto b_layout = volren::choose_layout(b_volume, tiny_options(), 2);
    std::uint64_t a_per_gpu = 0, b_per_gpu = 0;
    for (const volren::BrickInfo& brick : a_layout.bricks())
      if (brick.id % 2 == 0) a_per_gpu += brick.device_bytes();
    for (const volren::BrickInfo& brick : b_layout.bricks())
      if (brick.id % 2 == 0) b_per_gpu += brick.device_bytes();
    config.cache_capacity_override = b_per_gpu + a_per_gpu / 2;

    Harness h(2, config);
    SessionProfile orbiter;
    orbiter.name = "a";
    orbiter.priority = Priority::Batch;
    orbiter.orbit = OrbitHint{kFramesEach, 0.0};
    Session a = h.service->open_session(orbiter);
    Session b = h.service->open_session("b", Priority::Batch);
    a.submit_orbit(a_volume, tiny_options(), kFramesEach, 0.0, 0.0);
    b.submit_orbit(b_volume, tiny_options(), kFramesEach, 0.0, 0.0);
    h.service->drain();
    return h.service->stats();
  };

  const ServiceStats cold = run(false);
  const ServiceStats warm = run(true);

  auto session_hits = [](const ServiceStats& stats, std::size_t session) {
    return stats.sessions.at(session).cache_hits;
  };
  // Without prefetch the alternation thrashes: A restages every frame.
  EXPECT_EQ(session_hits(cold, 0), 0u);
  EXPECT_EQ(cold.bricks_prefetched, 0u);
  // With prefetch every A frame after the first hits every brick: the
  // prefetcher restaged them during B's frames.
  const std::uint64_t a_bricks =
      static_cast<std::uint64_t>(warm.frames[0].cache_misses);
  EXPECT_GT(a_bricks, 0u);
  EXPECT_EQ(session_hits(warm, 0),
            a_bricks * static_cast<std::uint64_t>(kFramesEach - 1));
  EXPECT_GE(warm.bricks_prefetched,
            a_bricks * static_cast<std::uint64_t>(kFramesEach - 1));
  EXPECT_GT(warm.bytes_prefetched, 0u);
  // The prefetcher only speculates for orbit-hinted sessions: B stays
  // cold in both runs.
  EXPECT_EQ(session_hits(cold, 1), 0u);
  EXPECT_EQ(session_hits(warm, 1), 0u);
  // And the speculative staging paid off end to end: serving the same
  // workload finished no later with prefetch than without.
  EXPECT_LE(warm.makespan_s, cold.makespan_s);
}

TEST(Scheduler, ArrivalTiesBreakBySubmissionOrderNotOpenOrder) {
  // Session "a" is opened first but submits second; under FIFO (and
  // round-robin's never-served state) the tie at equal effective
  // arrival must go to the smaller frame_id — global submission order —
  // not to the smaller session index.
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::Fifo, SchedulingPolicy::RoundRobin}) {
    ServiceConfig config;
    config.policy = policy;
    Harness h(2, config);
    Session a = h.service->open_session("a");
    Session b = h.service->open_session("b");
    b.submit(request_for(volume, 0.0));  // frame_id 0
    a.submit(request_for(volume, 0.0));  // frame_id 1
    h.service->drain();
    const ServiceStats stats = h.service->stats();
    ASSERT_EQ(stats.frames.size(), 2u);
    EXPECT_EQ(stats.frames[0].session, 1) << to_string(policy);
    EXPECT_EQ(stats.frames[0].frame_id, 0u) << to_string(policy);
    EXPECT_EQ(stats.frames[1].session, 0) << to_string(policy);
  }
}

TEST(Calibration, CostModelConvergesTowardObservedServiceTimes) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::ShortestJobFirst;  // records predictions
  Harness h(2, config);
  Session s = h.service->open_session("steady");
  constexpr int kFrames = 8;
  s.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
  h.service->drain();

  const ServiceStats stats = h.service->stats();
  ASSERT_EQ(stats.frames.size(), static_cast<std::size_t>(kFrames));
  // The EWMA moved off its prior after observing real service times.
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_NE(stats.sessions[0].cost_scale, 1.0);
  EXPECT_GT(stats.sessions[0].cost_scale, 0.0);

  // Frames 1.. are statistically identical (same volume, warm cache):
  // the calibrated prediction error of the last frame must not exceed
  // the uncalibrated error of the first warm frame.
  auto rel_err = [](const FrameRecord& f) {
    return std::abs(f.predicted_cost_s - f.service_s()) / f.service_s();
  };
  const double first_warm_err = rel_err(stats.frames[1]);
  const double last_err = rel_err(stats.frames[kFrames - 1]);
  EXPECT_LE(last_err, first_warm_err + 1e-12);

  // Calibration off: predictions stay at the a-priori model.
  ServiceConfig frozen = config;
  frozen.cost_calibration_alpha = 0.0;
  Harness h2(2, frozen);
  Session s2 = h2.service->open_session("frozen");
  s2.submit_orbit(volume, tiny_options(), kFrames, 0.0, 0.0);
  h2.service->drain();
  EXPECT_DOUBLE_EQ(h2.service->stats().sessions[0].cost_scale, 1.0);
}

TEST(Calibration, OutstandingCostTracksTheCalibratedScale) {
  // outstanding_cost_s feeds frontend placement; after calibration it
  // must report scale x the a-priori estimate, not the raw estimate.
  // Cache off so the estimate is residency-independent across services.
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  ServiceConfig config;
  config.enable_brick_cache = false;

  Harness fresh(2, config);
  Session f = fresh.service->open_session("s");
  f.submit(request_for(volume, 0.0));
  const double raw_outstanding = fresh.service->outstanding_cost_s();
  ASSERT_GT(raw_outstanding, 0.0);

  Harness calibrated(2, config);
  Session c = calibrated.service->open_session("s");
  for (int i = 0; i < 4; ++i) c.submit(request_for(volume, 0.0));
  calibrated.service->drain();
  const double scale = c.stats().cost_scale;
  ASSERT_NE(scale, 1.0);
  c.submit(request_for(volume, 0.0));
  EXPECT_NEAR(calibrated.service->outstanding_cost_s(), scale * raw_outstanding,
              1e-9 * raw_outstanding);
}

}  // namespace
}  // namespace vrmr::service
