// Session-handle tests: event-driven frame delivery (on_frame fires at
// finish_s on the DES timeline, in completion order), statistics
// queryable at any time (including mid-drain from inside a callback),
// streaming submission from callbacks, and handle semantics.

#include "service/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "service/render_service.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"

namespace vrmr::service {
namespace {

volren::RenderOptions tiny_options() {
  volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  return options;
}

struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<RenderService> service;

  explicit Harness(int gpus, ServiceConfig config = {}) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
    service = std::make_unique<RenderService>(*cluster, config);
  }
};

RenderRequest request_for(const volren::Volume& volume, double arrival) {
  RenderRequest r;
  r.volume = &volume;
  r.options = tiny_options();
  r.arrival_s = arrival;
  return r;
}

TEST(Session, CallbackFiresAtFinishOnTheDesTimeline) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("stream");
  std::vector<std::uint64_t> delivered;
  std::vector<double> clock_at_delivery;
  s.on_frame([&](const FrameRecord& frame) {
    delivered.push_back(frame.frame_id);
    clock_at_delivery.push_back(h.engine.now());
    // The engine clock IS the frame's finish time inside the callback.
    EXPECT_DOUBLE_EQ(h.engine.now(), frame.finish_s);
  });
  s.submit(request_for(volume, 0.0));
  s.submit(request_for(volume, 0.0));
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1, 2}));
  // Delivery times strictly increase: one callback per completion.
  ASSERT_EQ(clock_at_delivery.size(), 3u);
  EXPECT_LT(clock_at_delivery[0], clock_at_delivery[1]);
  EXPECT_LT(clock_at_delivery[1], clock_at_delivery[2]);
}

TEST(Session, CallbacksAcrossSessionsFireInCompletionOrder) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  ServiceConfig config;
  config.policy = SchedulingPolicy::RoundRobin;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  std::vector<int> order;  // session index per delivery
  a.on_frame([&](const FrameRecord& f) { order.push_back(f.session); });
  b.on_frame([&](const FrameRecord& f) { order.push_back(f.session); });
  for (int f = 0; f < 2; ++f) a.submit(request_for(volume, 0.0));
  for (int f = 0; f < 2; ++f) b.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));  // round-robin schedule
}

TEST(Session, CallbackRegisteredMidStreamSeesOnlyLaterFrames) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("late");
  s.submit(request_for(volume, 0.0));
  h.service->drain();  // first frame completes undelivered

  int delivered = 0;
  s.on_frame([&](const FrameRecord&) { ++delivered; });
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(delivered, 1);  // only the post-registration frame
  EXPECT_EQ(s.stats().frames, 2);
}

TEST(Session, StreamingSubmitFromInsideACallback) {
  // A streaming client tops up its queue from the delivery callback —
  // the drain loop keeps serving frames submitted mid-drain.
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("stream");
  int delivered = 0;
  s.on_frame([&](const FrameRecord&) {
    ++delivered;
    if (delivered < 4) s.submit(request_for(volume, 0.0));
  });
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(delivered, 4);
  const ServiceStats stats = h.service->stats();
  EXPECT_EQ(stats.frames_total, 4);
  // A streamed frame's effective arrival is its submit clock (the
  // previous frame's finish), not the backdated 0.0 — its latency must
  // not absorb serving time from before it existed.
  for (std::size_t f = 1; f < stats.frames.size(); ++f) {
    EXPECT_DOUBLE_EQ(stats.frames[f].arrival_s, stats.frames[f - 1].finish_s);
    EXPECT_DOUBLE_EQ(stats.frames[f].queue_wait_s(), 0.0);
  }
}

TEST(Session, StreamedBackdatedFrameDoesNotJumpTheFifoQueue) {
  // Under FIFO, a frame streamed from a callback with a backdated
  // arrival_s=0.0 must queue behind a frame that effectively arrived
  // earlier (its arrival floors at the submit clock, for scheduling
  // and telemetry alike).
  const volren::Volume va = volren::datasets::skull({16, 16, 16});
  const volren::Volume vb = volren::datasets::supernova({24, 24, 24});
  ServiceConfig config;
  config.policy = SchedulingPolicy::Fifo;
  Harness h(2, config);
  Session a = h.service->open_session("a");
  Session b = h.service->open_session("b");
  b.on_frame([&](const FrameRecord& f) {
    if (f.frame_id == 0) b.submit(request_for(vb, 0.0));  // backdated
  });
  b.submit(request_for(vb, 0.0));
  a.submit(request_for(va, 1e-6));  // arrives during b's first frame
  h.service->drain();
  const ServiceStats stats = h.service->stats();
  ASSERT_EQ(stats.frames.size(), 3u);
  // b0 (arrival 0) first; a's frame beats b's streamed frame, whose
  // effective arrival is b0's finish time.
  EXPECT_EQ(stats.frames[0].session, 1);
  EXPECT_EQ(stats.frames[1].session, 0);
  EXPECT_EQ(stats.frames[2].session, 1);
  EXPECT_DOUBLE_EQ(stats.frames[2].arrival_s, stats.frames[0].finish_s);
}

TEST(Session, ReentrantDrainFromACallbackIsANoOp) {
  // A callback forcing synchronous completion must not recurse into
  // the serve loop (the outer drain already serves everything, and
  // recursion would invalidate the callback's own record reference).
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("pushy");
  int delivered = 0;
  s.on_frame([&](const FrameRecord& frame) {
    ++delivered;
    if (delivered == 1) {
      s.submit(request_for(volume, 0.0));
      h.service->drain();  // no-op: already draining
      // The record reference is still valid after the nested call.
      EXPECT_DOUBLE_EQ(frame.finish_s, h.engine.now());
      EXPECT_EQ(s.stats().queued_frames, 1);  // nested drain served nothing
    }
  });
  s.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(delivered, 2);  // the outer drain served the streamed frame
}

TEST(Session, CallbackMayReplaceItselfMidDelivery) {
  // A one-shot handler re-registering from inside its own invocation
  // must not destroy the running closure.
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("oneshot");
  int first = 0;
  int rest = 0;
  s.on_frame([&](const FrameRecord&) {
    ++first;
    s.on_frame([&](const FrameRecord&) { ++rest; });
  });
  for (int f = 0; f < 3; ++f) s.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(rest, 2);
}

TEST(Session, StatsQueryableAtAnyTime) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(2);
  Session s = h.service->open_session("q", Priority::Interactive);

  // Before any work: empty but well-formed.
  SessionStats before = s.stats();
  EXPECT_EQ(before.name, "q");
  EXPECT_EQ(before.priority, Priority::Interactive);
  EXPECT_EQ(before.frames, 0);
  EXPECT_EQ(before.queued_frames, 0);

  s.submit(request_for(volume, 0.0));
  s.submit(request_for(volume, 0.0));
  EXPECT_EQ(s.stats().queued_frames, 2);
  EXPECT_EQ(s.stats().frames, 0);

  // Mid-drain, from inside the callback: completed/queued consistent.
  std::vector<std::pair<int, int>> snapshots;  // (completed, queued)
  s.on_frame([&](const FrameRecord&) {
    const SessionStats mid = s.stats();
    snapshots.emplace_back(mid.frames, mid.queued_frames);
  });
  h.service->drain();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots[0], std::make_pair(1, 1));
  EXPECT_EQ(snapshots[1], std::make_pair(2, 0));

  const SessionStats after = s.stats();
  EXPECT_EQ(after.frames, 2);
  EXPECT_EQ(after.queued_frames, 0);
  EXPECT_GT(after.fps, 0.0);
}

TEST(Session, ProfileAccessibleThroughHandle) {
  Harness h(1);
  SessionProfile profile;
  profile.name = "orbiter";
  profile.priority = Priority::Interactive;
  profile.orbit = OrbitHint{24, 0.03};
  Session s = h.service->open_session(profile);
  EXPECT_EQ(s.profile().name, "orbiter");
  EXPECT_EQ(s.profile().priority, Priority::Interactive);
  ASSERT_TRUE(s.profile().orbit.has_value());
  EXPECT_EQ(s.profile().orbit->frames_per_orbit, 24);
  EXPECT_DOUBLE_EQ(s.profile().orbit->frame_interval_s, 0.03);
}

TEST(Session, HandlesAreCopyableAndAliasTheSameSession) {
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  Harness h(1);
  Session s = h.service->open_session("shared");
  Session alias = s;  // a handle is a value
  alias.submit(request_for(volume, 0.0));
  h.service->drain();
  EXPECT_EQ(s.stats().frames, 1);
  EXPECT_EQ(alias.stats().frames, 1);
}

}  // namespace
}  // namespace vrmr::service
