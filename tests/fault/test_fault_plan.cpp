// FaultPlan tests: explicit and seeded event generation, the
// determinism contract (same seed + same calls => bit-identical event
// list; wall clock never enters), time-sorted iteration, and per-shard
// filtering.

#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vrmr::fault {
namespace {

TEST(FaultPlan, EventsSortByTimeThenInsertionOrder) {
  FaultPlan plan;
  plan.add({FaultKind::LaneDeath, 2.0, 0, 1})
      .add({FaultKind::DiskReadError, 0.5, 0, -1})
      .add({FaultKind::ShardCrash, 2.0, 1, -1})   // ties with the first add
      .add({FaultKind::LaneStall, 1.0, 0, 0, 0.25});
  const std::vector<FaultEvent> events = plan.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FaultKind::DiskReadError);
  EXPECT_EQ(events[1].kind, FaultKind::LaneStall);
  // Stable sort: equal times keep insertion order.
  EXPECT_EQ(events[2].kind, FaultKind::LaneDeath);
  EXPECT_EQ(events[3].kind, FaultKind::ShardCrash);
}

TEST(FaultPlan, EventsForFiltersByShardAndKind) {
  FaultPlan plan;
  plan.add({FaultKind::LaneDeath, 1.0, 0, 1})
      .add({FaultKind::ShardCrash, 2.0, 1, -1})
      .add({FaultKind::LaneStall, 3.0, 0, 2, 0.5});
  EXPECT_EQ(plan.events_for(0).size(), 2u);
  EXPECT_EQ(plan.events_for(1).size(), 1u);
  EXPECT_EQ(plan.events_for(2).size(), 0u);
  const std::vector<FaultEvent> stalls =
      plan.events_for(0, FaultKind::LaneStall);
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].target, 2);
  EXPECT_DOUBLE_EQ(stalls[0].param_s, 0.5);
}

TEST(FaultPlan, SameSeedReplaysBitIdentically) {
  // The determinism contract: two plans built with the same seed and
  // the same sequence of add_random calls hold identical events — the
  // replay recipe in src/fault/README.md depends on this.
  const auto build = [] {
    FaultPlan plan(0xfeedface);
    plan.add_random(FaultKind::DiskReadError, 8, 0.0, 10.0, 4, 4);
    plan.add_random(FaultKind::FabricDrop, 4, 5.0, 20.0, 4, -1, 0.0);
    plan.add_random(FaultKind::LaneStall, 2, 0.0, 1.0, 2, 8, 0.125);
    return plan.events();
  };
  const std::vector<FaultEvent> a = build();
  const std::vector<FaultEvent> b = build();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 14u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].shard, b[i].shard) << i;
    EXPECT_EQ(a[i].target, b[i].target) << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i].time_s, b[i].time_s) << i;
    EXPECT_EQ(a[i].param_s, b[i].param_s) << i;
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(1), b(2);
  a.add_random(FaultKind::DiskReadError, 16, 0.0, 100.0, 8, 8);
  b.add_random(FaultKind::DiskReadError, 16, 0.0, 100.0, 8, 8);
  const std::vector<FaultEvent> ea = a.events();
  const std::vector<FaultEvent> eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < ea.size() && !any_difference; ++i)
    any_difference = ea[i].time_s != eb[i].time_s ||
                     ea[i].shard != eb[i].shard || ea[i].target != eb[i].target;
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, RandomEventsRespectRanges) {
  FaultPlan plan(7);
  plan.add_random(FaultKind::LaneDeath, 64, 2.0, 3.0, 3, 5);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.time_s, 2.0);
    EXPECT_LT(e.time_s, 3.0);
    EXPECT_GE(e.shard, 0);
    EXPECT_LT(e.shard, 3);
    EXPECT_GE(e.target, 0);
    EXPECT_LT(e.target, 5);
  }
  // num_targets <= 0 means "any target" (-1).
  FaultPlan wildcard(7);
  wildcard.add_random(FaultKind::ShardCrash, 4, 0.0, 1.0, 2, -1);
  for (const FaultEvent& e : wildcard.events()) EXPECT_EQ(e.target, -1);
}

TEST(FaultPlan, KindNamesAreStable) {
  // Trace events and BENCH metrics embed these strings; renames break
  // trace validation (tools/validate_trace.py --require fault...).
  EXPECT_STREQ(to_string(FaultKind::DiskReadError), "disk_read_error");
  EXPECT_STREQ(to_string(FaultKind::FabricDrop), "fabric_drop");
  EXPECT_STREQ(to_string(FaultKind::FabricDelay), "fabric_delay");
  EXPECT_STREQ(to_string(FaultKind::LaneStall), "lane_stall");
  EXPECT_STREQ(to_string(FaultKind::LaneDeath), "lane_death");
  EXPECT_STREQ(to_string(FaultKind::ShardCrash), "shard_crash");
}

}  // namespace
}  // namespace vrmr::fault
