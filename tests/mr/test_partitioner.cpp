#include <gtest/gtest.h>

#include <vector>

#include "mr/partitioner.hpp"

namespace vrmr::mr {
namespace {

PartitionDomain pixel_domain(std::uint32_t width, std::uint32_t height,
                             std::uint32_t tile = 32) {
  PartitionDomain d;
  d.num_keys = width * height;
  d.image_width = width;
  d.tile_size = tile;
  return d;
}

struct StrategyCase {
  PartitionStrategy strategy;
  int partitions;
};

std::string strategy_case_name(const testing::TestParamInfo<StrategyCase>& info) {
  const char* name = info.param.strategy == PartitionStrategy::PixelRoundRobin ? "rr"
                     : info.param.strategy == PartitionStrategy::Striped       ? "striped"
                                                                               : "tiled";
  return std::string(name) + "_r" + std::to_string(info.param.partitions);
}

class PartitionerProperties : public testing::TestWithParam<StrategyCase> {};

// Totality + balance: every key maps to a valid partition, and no
// partition receives more than ~2x its fair share of a dense pixel
// domain (load balance is why the paper picked round-robin).
TEST_P(PartitionerProperties, TotalAndRoughlyBalanced) {
  const auto [strategy, partitions] = GetParam();
  // 8-pixel tiles give 12x8 = 96 tiles, enough granularity for every
  // partition count in the sweep (balance is meaningless with fewer
  // tiles than partitions).
  const PartitionDomain domain = pixel_domain(96, 64, /*tile=*/8);
  const auto part = make_partitioner(strategy, domain, partitions);
  ASSERT_EQ(part->num_partitions(), partitions);

  std::vector<std::int64_t> counts(static_cast<size_t>(partitions), 0);
  for (std::uint32_t key = 0; key < domain.num_keys; ++key) {
    const int owner = part->owner(key);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, partitions);
    ++counts[static_cast<size_t>(owner)];
  }
  const double fair = static_cast<double>(domain.num_keys) / partitions;
  for (int r = 0; r < partitions; ++r) {
    EXPECT_LT(counts[static_cast<size_t>(r)], 2.0 * fair + 1) << "partition " << r;
    EXPECT_GT(counts[static_cast<size_t>(r)], 0.25 * fair - 1) << "partition " << r;
  }
}

TEST_P(PartitionerProperties, Deterministic) {
  const auto [strategy, partitions] = GetParam();
  const PartitionDomain domain = pixel_domain(64, 64);
  const auto a = make_partitioner(strategy, domain, partitions);
  const auto b = make_partitioner(strategy, domain, partitions);
  for (std::uint32_t key = 0; key < domain.num_keys; key += 17) {
    EXPECT_EQ(a->owner(key), b->owner(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PartitionerProperties,
    testing::Values(StrategyCase{PartitionStrategy::PixelRoundRobin, 1},
                    StrategyCase{PartitionStrategy::PixelRoundRobin, 3},
                    StrategyCase{PartitionStrategy::PixelRoundRobin, 8},
                    StrategyCase{PartitionStrategy::PixelRoundRobin, 32},
                    StrategyCase{PartitionStrategy::Striped, 1},
                    StrategyCase{PartitionStrategy::Striped, 5},
                    StrategyCase{PartitionStrategy::Striped, 16},
                    StrategyCase{PartitionStrategy::Tiled, 1},
                    StrategyCase{PartitionStrategy::Tiled, 7},
                    StrategyCase{PartitionStrategy::Tiled, 16}),
    strategy_case_name);

TEST(RoundRobinPartitioner, IsExactlyModulo) {
  // §3.1.1: "A modulo is sufficient to determine the reducer".
  const auto part = make_partitioner(PartitionStrategy::PixelRoundRobin,
                                     pixel_domain(16, 16), 7);
  for (std::uint32_t key = 0; key < 256; ++key) {
    EXPECT_EQ(part->owner(key), static_cast<int>(key % 7));
  }
}

TEST(StripedPartitioner, AssignsContiguousRanges) {
  const auto part = make_partitioner(PartitionStrategy::Striped, pixel_domain(10, 10), 4);
  // Owners must be non-decreasing over the key range.
  int prev = 0;
  for (std::uint32_t key = 0; key < 100; ++key) {
    const int owner = part->owner(key);
    EXPECT_GE(owner, prev);
    prev = owner;
  }
  EXPECT_EQ(part->owner(0), 0);
  EXPECT_EQ(part->owner(99), 3);
}

TEST(TiledPartitioner, PixelsInOneTileShareAnOwner) {
  const std::uint32_t width = 64;
  const auto part =
      make_partitioner(PartitionStrategy::Tiled, pixel_domain(width, 64, 16), 4);
  // All pixels of tile (0,0) share an owner; tile (1,0) may differ.
  const int owner00 = part->owner(0);
  for (std::uint32_t y = 0; y < 16; ++y) {
    for (std::uint32_t x = 0; x < 16; ++x) {
      EXPECT_EQ(part->owner(y * width + x), owner00);
    }
  }
  EXPECT_NE(part->owner(16), owner00);  // next tile, 4 partitions, round-robin
}

TEST(Partitioner, StripedRequiresKeyCount) {
  PartitionDomain domain;  // num_keys == 0
  EXPECT_THROW((void)make_partitioner(PartitionStrategy::Striped, domain, 2),
               vrmr::CheckError);
}

TEST(Partitioner, TiledRequiresImageWidth) {
  PartitionDomain domain;
  domain.num_keys = 100;  // but no width
  EXPECT_THROW((void)make_partitioner(PartitionStrategy::Tiled, domain, 2),
               vrmr::CheckError);
}

TEST(Partitioner, ToStringNames) {
  EXPECT_STREQ(to_string(PartitionStrategy::PixelRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(PartitionStrategy::Striped), "striped");
  EXPECT_STREQ(to_string(PartitionStrategy::Tiled), "tiled");
}

}  // namespace
}  // namespace vrmr::mr
