#include <gtest/gtest.h>

#include <cstring>

#include "mr/kv_buffer.hpp"

namespace vrmr::mr {
namespace {

struct Value8 {
  float a;
  float b;
};

TEST(KvBuffer, StartsEmpty) {
  KvBuffer buf(8);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.bytes(), 0u);
  EXPECT_EQ(buf.value_size(), 8u);
}

TEST(KvBuffer, RejectsZeroValueSize) { EXPECT_THROW(KvBuffer buf(0), vrmr::CheckError); }

TEST(KvBuffer, AppendAndRead) {
  KvBuffer buf(8);
  const Value8 v1{1.0f, 2.0f};
  const Value8 v2{3.0f, 4.0f};
  buf.append(10, &v1);
  buf.append(20, &v2);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.key(0), 10u);
  EXPECT_EQ(buf.key(1), 20u);
  Value8 out{};
  std::memcpy(&out, buf.value(1), 8);
  EXPECT_EQ(out.a, 3.0f);
  EXPECT_EQ(out.b, 4.0f);
  // Bytes = pairs * (key + value).
  EXPECT_EQ(buf.bytes(), 2u * (4 + 8));
}

TEST(KvBuffer, TypedHelpers) {
  KvBuffer buf = KvBuffer::for_value_type<Value8>();
  buf.append_typed(7, Value8{5.0f, 6.0f});
  EXPECT_EQ(buf.value_as<Value8>(0).a, 5.0f);
  EXPECT_EQ(buf.value_as<Value8>(0).b, 6.0f);
}

TEST(KvBuffer, PlaceholdersAreCountedAndSized) {
  KvBuffer buf(8);
  const Value8 v{1, 2};
  buf.append(0, &v);
  buf.append_placeholder();
  buf.append_placeholder();
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.placeholder_count(), 2u);
  EXPECT_EQ(buf.key(1), kPlaceholderKey);
  // Placeholders occupy full pair bytes (they ride the D2H copy).
  EXPECT_EQ(buf.bytes(), 3u * 12);
}

TEST(KvBuffer, AppendBulkMatchesLooping) {
  KvBuffer a(4), b(4);
  const std::vector<std::uint32_t> keys{1, 2, 3, 4};
  const std::vector<float> values{1.5f, 2.5f, 3.5f, 4.5f};
  a.append_bulk(keys, values.data());
  for (size_t i = 0; i < keys.size(); ++i) b.append(keys[i], &values[i]);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.key(i), b.key(i));
    EXPECT_EQ(std::memcmp(a.value(i), b.value(i), 4), 0);
  }
}

TEST(KvBuffer, AppendBufferConcatenates) {
  KvBuffer a(4), b(4);
  const float x = 1.0f, y = 2.0f;
  a.append(1, &x);
  b.append(2, &y);
  a.append_buffer(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.key(1), 2u);
  EXPECT_EQ(a.value_as<float>(1), 2.0f);
  // Appending an empty buffer is a no-op regardless of its value size.
  KvBuffer empty(16);
  a.append_buffer(empty);
  EXPECT_EQ(a.size(), 2u);
}

TEST(KvBuffer, AppendBufferRejectsMismatchedValueSize) {
  KvBuffer a(4), b(8);
  const Value8 v{1, 2};
  b.append(0, &v);
  EXPECT_THROW(a.append_buffer(b), vrmr::CheckError);
}

TEST(KvBuffer, ClearAndReserve) {
  KvBuffer buf(4);
  buf.reserve(100);
  const float v = 3.0f;
  buf.append(1, &v);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.bytes(), 0u);
}

TEST(KvBuffer, SpansExposeRawStorage) {
  KvBuffer buf(4);
  const float v1 = 1.0f, v2 = 2.0f;
  buf.append(10, &v1);
  buf.append(11, &v2);
  EXPECT_EQ(buf.keys().size(), 2u);
  EXPECT_EQ(buf.values().size(), 8u);
  EXPECT_EQ(buf.keys()[1], 11u);
}

TEST(KvBuffer, MutableValueAllowsInPlaceEdit) {
  KvBuffer buf(4);
  const float v = 1.0f;
  buf.append(0, &v);
  const float nv = 9.0f;
  std::memcpy(buf.mutable_value(0), &nv, 4);
  EXPECT_EQ(buf.value_as<float>(0), 9.0f);
}

}  // namespace
}  // namespace vrmr::mr
