// Combiner (mapper-side partial reduce) — the stage the paper omitted
// (§3.1). Correctness: results identical with and without combining for
// commutative reductions; traffic: combined jobs ship (and reduce) far
// fewer pairs when keys repeat within a mapper.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cluster/cluster.hpp"
#include "mr/combiner.hpp"
#include "mr/job.hpp"
#include "sim/engine.hpp"

namespace vrmr::mr {
namespace {

class RangeChunk final : public Chunk {
 public:
  RangeChunk(std::uint32_t lo, std::uint32_t hi) : lo_(lo), hi_(hi) {}
  std::uint64_t device_bytes() const override { return 1024; }
  std::uint32_t lo() const { return lo_; }
  std::uint32_t hi() const { return hi_; }

 private:
  std::uint32_t lo_, hi_;
};

class ModuloMapper final : public Mapper {
 public:
  explicit ModuloMapper(std::uint32_t num_keys) : num_keys_(num_keys) {}
  MapOutcome map(gpusim::Device&, const Chunk& chunk, KvBuffer& out) override {
    const auto& range = dynamic_cast<const RangeChunk&>(chunk);
    for (std::uint32_t i = range.lo(); i < range.hi(); ++i) {
      const std::uint64_t value = i;
      out.append_typed(i % num_keys_, value);
    }
    return {range.hi() - range.lo(), out.size()};
  }

 private:
  std::uint32_t num_keys_;
};

class SumReducer final : public Reducer {
 public:
  explicit SumReducer(std::map<std::uint32_t, std::uint64_t>* sums) : sums_(sums) {}
  void reduce(std::uint32_t key, const std::byte* values, std::size_t count) override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t v;
      std::memcpy(&v, values + i * sizeof(v), sizeof(v));
      total += v;
    }
    (*sums_)[key] += total;
  }

 private:
  std::map<std::uint32_t, std::uint64_t>* sums_;
};

/// Sums each group down to a single pair.
class SumCombiner final : public Combiner {
 public:
  void combine(std::uint32_t key, const std::byte* values, std::size_t count,
               KvBuffer& out) override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t v;
      std::memcpy(&v, values + i * sizeof(v), sizeof(v));
      total += v;
    }
    out.append_typed(key, total);
  }
};

/// Drops everything — exercises the empty-payload flush path.
class DropAllCombiner final : public Combiner {
 public:
  void combine(std::uint32_t, const std::byte*, std::size_t, KvBuffer&) override {}
};

struct RunResult {
  JobStats stats;
  std::map<std::uint32_t, std::uint64_t> sums;
};

RunResult run_sum_job(int gpus, std::uint32_t num_keys, bool with_combiner,
                      std::unique_ptr<Combiner> (*make)() = nullptr,
                      BarrierMode barrier_mode = BarrierMode::Global) {
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(gpus));
  JobConfig cfg;
  cfg.value_size = sizeof(std::uint64_t);
  cfg.domain.num_keys = num_keys;
  cfg.barrier_mode = barrier_mode;
  Job job(cluster, cfg);
  job.set_mapper_factory(
      [num_keys](int, gpusim::Device&) { return std::make_unique<ModuloMapper>(num_keys); });
  RunResult result;
  job.set_reducer_factory(
      [&result](int) { return std::make_unique<SumReducer>(&result.sums); });
  if (with_combiner) {
    job.set_combiner_factory([make](int) {
      return make ? make() : std::unique_ptr<Combiner>(std::make_unique<SumCombiner>());
    });
  }
  for (int c = 0; c < 8; ++c)
    job.add_chunk(std::make_unique<RangeChunk>(c * 1000, (c + 1) * 1000));
  result.stats = job.run();
  return result;
}

TEST(Combiner, PreservesReductionResult) {
  const RunResult plain = run_sum_job(4, 16, false);
  const RunResult combined = run_sum_job(4, 16, true);
  EXPECT_EQ(plain.sums, combined.sums);
}

TEST(Combiner, CollapsesRepeatedKeys) {
  // 8000 pairs over 16 keys: each mapper's buffer collapses to at most
  // 16 pairs, so network traffic shrinks by orders of magnitude.
  const RunResult plain = run_sum_job(4, 16, false);
  const RunResult combined = run_sum_job(4, 16, true);
  EXPECT_EQ(combined.stats.combine_input_pairs, 8000u);
  EXPECT_LE(combined.stats.combine_output_pairs, 4u * 16u);
  EXPECT_LT(combined.stats.bytes_net, plain.stats.bytes_net / 10);
  EXPECT_EQ(plain.stats.combine_input_pairs, 0u);  // no combiner configured
}

TEST(Combiner, UselessWhenKeysAreUnique) {
  // Dense unique keys (one pair per key per job): combining buys
  // nothing — the paper's situation for volume rendering with
  // bricks ≈ GPUs, and why §3.1 omitted the stage.
  const RunResult plain = run_sum_job(2, 8000, false);
  const RunResult combined = run_sum_job(2, 8000, true);
  EXPECT_EQ(plain.sums, combined.sums);
  EXPECT_EQ(combined.stats.combine_input_pairs, combined.stats.combine_output_pairs);
  EXPECT_EQ(combined.stats.bytes_net, plain.stats.bytes_net);
  // The combine pass itself costs CPU time: the combined run is slower.
  EXPECT_GT(combined.stats.runtime_s, plain.stats.runtime_s);
}

TEST(Combiner, MayDropEverything) {
  const RunResult dropped = run_sum_job(4, 16, true, +[]() {
    return std::unique_ptr<Combiner>(std::make_unique<DropAllCombiner>());
  });
  EXPECT_TRUE(dropped.sums.empty());
  EXPECT_EQ(dropped.stats.combine_output_pairs, 0u);
  EXPECT_EQ(dropped.stats.bytes_net, 0u);
}

TEST(Combiner, DroppedSendsCascadeSafelyUnderPerReducerBarriers) {
  // Every flush collapses to an empty payload, so every send resolves
  // through the empty-payload path and every reducer's inbox ends
  // empty. Under PerReducer barriers the final empty send can trigger
  // a fully synchronous zero-pair sort+reduce cascade that finishes
  // the frame — the routing/sort barrier stamps must land before that
  // cascade so stage attribution stays sane (regression: t_routed was
  // stamped after the cascade and sort_s absorbed the whole map span).
  for (const BarrierMode mode : {BarrierMode::Global, BarrierMode::PerReducer}) {
    const RunResult dropped = run_sum_job(4, 16, true, +[]() {
      return std::unique_ptr<Combiner>(std::make_unique<DropAllCombiner>());
    }, mode);
    EXPECT_TRUE(dropped.sums.empty());
    EXPECT_GT(dropped.stats.t_routed, 0.0) << to_string(mode);
    EXPECT_GE(dropped.stats.t_sorted, dropped.stats.t_routed) << to_string(mode);
    EXPECT_GE(dropped.stats.runtime_s, dropped.stats.t_sorted) << to_string(mode);
    EXPECT_GE(dropped.stats.stage.sort_s, 0.0) << to_string(mode);
    EXPECT_GE(dropped.stats.stage.reduce_s, 0.0) << to_string(mode);
    // The sort phase of an all-empty frame is a zero-length cascade,
    // not the whole pre-routing span.
    EXPECT_LT(dropped.stats.stage.sort_s, dropped.stats.t_routed) << to_string(mode);
  }
}

TEST(Combiner, WorksWithTinySendBuffers) {
  // Eager flushing combines per-chunk slices; totals must still match.
  sim::Engine engine;
  cluster::Cluster cluster(engine, cluster::ClusterConfig::with_total_gpus(2));
  JobConfig cfg;
  cfg.value_size = sizeof(std::uint64_t);
  cfg.domain.num_keys = 16;
  cfg.send_buffer_bytes = 64;  // flush almost every chunk
  Job job(cluster, cfg);
  job.set_mapper_factory(
      [](int, gpusim::Device&) { return std::make_unique<ModuloMapper>(16); });
  std::map<std::uint32_t, std::uint64_t> sums;
  job.set_reducer_factory([&](int) { return std::make_unique<SumReducer>(&sums); });
  job.set_combiner_factory([](int) { return std::make_unique<SumCombiner>(); });
  for (int c = 0; c < 4; ++c)
    job.add_chunk(std::make_unique<RangeChunk>(c * 500, (c + 1) * 500));
  (void)job.run();

  std::map<std::uint32_t, std::uint64_t> expected;
  for (std::uint32_t i = 0; i < 2000; ++i) expected[i % 16] += i;
  EXPECT_EQ(sums, expected);
}

}  // namespace
}  // namespace vrmr::mr
