// FramePlan under an injected mr::FaultHook: a failed map quantum is
// detected after its timeout, the chunk is restored and re-issued, the
// attempt counter climbs, and the finished pixels are bit-identical to
// the fault-free schedule. Driven through volren::plan_frame's greedy
// run_to_completion (the service's externally-driven retry/backoff path
// is covered by tests/service/test_fault_tolerance.cpp).

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "mr/job.hpp"
#include "sim/engine.hpp"
#include "volren/datasets.hpp"
#include "volren/image.hpp"
#include "volren/renderer.hpp"

namespace vrmr::mr {
namespace {

volren::RenderOptions small_options() {
  volren::RenderOptions opt;
  opt.image_width = 32;
  opt.image_height = 32;
  return opt;
}

/// Greedy render with a fault hook installed; returns the result.
volren::RenderResult render_with_hook(int gpus, const volren::Volume& volume,
                                      FaultHook hook) {
  sim::Engine engine;
  cluster::Cluster cluster(engine,
                           cluster::ClusterConfig::with_total_gpus(gpus));
  const volren::RenderOptions opt = small_options();
  const volren::BrickLayout layout =
      volren::choose_layout(volume, opt, cluster.total_gpus());
  volren::AdaptiveQuality aq;
  aq.fault_hook = std::move(hook);
  auto frame = volren::plan_frame(cluster, volume, opt, nullptr, layout, aq);
  frame->plan().run_to_completion();
  return frame->finish();
}

TEST(FramePlanFaults, FailedQuantumRetriesToIdenticalPixels) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const volren::RenderResult clean = render_with_hook(2, volume, nullptr);

  std::vector<int> attempts_seen;
  const volren::RenderResult faulted = render_with_hook(
      2, volume, [&attempts_seen](int, int chunk_index, int attempt) {
        QuantumFault fault;
        if (chunk_index == 0) {
          attempts_seen.push_back(attempt);
          if (attempt == 1) {  // fail exactly once
            fault.fail = true;
            fault.detect_s = 1e-3;
            fault.kind = "disk_error";
          }
        }
        return fault;
      });

  // The hook saw the first attempt and its retry.
  ASSERT_EQ(attempts_seen.size(), 2u);
  EXPECT_EQ(attempts_seen[0], 1);
  EXPECT_EQ(attempts_seen[1], 2);
  EXPECT_EQ(faulted.stats.quanta_failed, 1u);
  EXPECT_EQ(clean.stats.quanta_failed, 0u);
  // Recovery is invisible in the pixels and visible in the clock.
  EXPECT_EQ(volren::compare_images(faulted.image, clean.image).max_abs, 0.0);
  EXPECT_GT(faulted.stats.runtime_s, clean.stats.runtime_s);
}

TEST(FramePlanFaults, EveryQuantumFailingOnceStillCompletes) {
  const volren::Volume volume = volren::datasets::skull({24, 24, 24});
  const volren::RenderResult clean = render_with_hook(2, volume, nullptr);
  const volren::RenderResult faulted = render_with_hook(
      2, volume, [](int, int, int attempt) {
        QuantumFault fault;
        fault.fail = attempt == 1;  // first attempt of EVERY chunk fails
        fault.detect_s = 5e-4;
        return fault;
      });
  EXPECT_GT(faulted.stats.quanta_failed, 0u);
  EXPECT_EQ(volren::compare_images(faulted.image, clean.image).max_abs, 0.0);
}

TEST(FramePlanFaults, NoFaultHookMatchesNullBaseline) {
  // An installed hook that never fails must not perturb the schedule:
  // same pixels, same runtime as planning without a hook at all.
  const volren::Volume volume = volren::datasets::skull({16, 16, 16});
  const volren::RenderResult without = render_with_hook(2, volume, nullptr);
  const volren::RenderResult with = render_with_hook(
      2, volume, [](int, int, int) { return QuantumFault{}; });
  EXPECT_EQ(with.stats.quanta_failed, 0u);
  EXPECT_EQ(volren::compare_images(with.image, without.image).max_abs, 0.0);
  EXPECT_EQ(with.stats.runtime_s, without.stats.runtime_s);
}

}  // namespace
}  // namespace vrmr::mr
