// Direct unit tests of the §6.3 speed-of-light analysis (the job-level
// integration is covered in test_job.cpp).

#include <gtest/gtest.h>

#include "mr/analysis.hpp"

namespace vrmr::mr {
namespace {

JobStats stats_with(std::uint64_t samples, std::uint64_t h2d, std::uint64_t d2h,
                    std::uint64_t net_inter, std::uint64_t fragments, int gpus,
                    int nodes) {
  JobStats s;
  s.total_samples = samples;
  s.bytes_h2d = h2d;
  s.bytes_d2h = d2h;
  s.bytes_net_inter = net_inter;
  s.fragments = fragments;
  s.num_gpus = gpus;
  s.num_nodes = nodes;
  return s;
}

cluster::ClusterConfig config_with(int gpus) {
  return cluster::ClusterConfig::with_total_gpus(gpus);
}

TEST(SpeedOfLight, MapFloorIsSamplesOverAggregateRate) {
  const auto cfg = config_with(8);
  const JobStats s = stats_with(/*samples=*/8'000'000, 0, 0, 0, 0, 8, 2);
  const SpeedOfLight sol = speed_of_light(s, cfg);
  EXPECT_DOUBLE_EQ(sol.map_compute_s,
                   8e6 / (8.0 * cfg.hw.gpu.sample_rate_per_s));
}

TEST(SpeedOfLight, TransferFloorsUsePerNodeBandwidth) {
  const auto cfg = config_with(8);  // 2 nodes
  const JobStats s = stats_with(0, /*h2d=*/1 << 30, /*d2h=*/1 << 20, 0, 0, 8, 2);
  const SpeedOfLight sol = speed_of_light(s, cfg);
  EXPECT_DOUBLE_EQ(sol.h2d_s,
                   static_cast<double>(1 << 30) / (2.0 * cfg.hw.pcie.bandwidth_Bps));
  EXPECT_GT(sol.h2d_s, sol.d2h_s);
}

TEST(SpeedOfLight, PipelinedBoundIsTheMaximumActivity) {
  const auto cfg = config_with(4);
  const JobStats s = stats_with(100'000'000, 1 << 28, 1 << 22, 1 << 22, 2'000'000, 4, 1);
  const SpeedOfLight sol = speed_of_light(s, cfg);
  const double expected_max = std::max(
      {sol.map_compute_s, sol.h2d_s, sol.d2h_s, sol.net_s, sol.sort_s, sol.reduce_s});
  EXPECT_DOUBLE_EQ(sol.pipelined_bound_s, expected_max);
  EXPECT_DOUBLE_EQ(sol.serial_bound_s, sol.map_compute_s + sol.h2d_s + sol.d2h_s +
                                           sol.net_s + sol.sort_s + sol.reduce_s);
  EXPECT_GE(sol.serial_bound_s, sol.pipelined_bound_s);
}

TEST(SpeedOfLight, DiskIsReportedButExcludedFromBounds) {
  // §6.3 excludes disk; a huge disk volume must not move the bound.
  const auto cfg = config_with(2);
  JobStats s = stats_with(1000, 1000, 1000, 0, 100, 2, 1);
  const SpeedOfLight before = speed_of_light(s, cfg);
  s.bytes_disk = 100ull << 30;
  const SpeedOfLight after = speed_of_light(s, cfg);
  EXPECT_GT(after.disk_s, 100.0);
  EXPECT_DOUBLE_EQ(after.pipelined_bound_s, before.pipelined_bound_s);
}

TEST(SpeedOfLight, EfficiencyBehaviour) {
  const auto cfg = config_with(2);
  const JobStats s = stats_with(10'000'000, 1 << 20, 1 << 20, 1 << 20, 100'000, 2, 1);
  const SpeedOfLight sol = speed_of_light(s, cfg);
  // Achieving exactly the bound is efficiency 1; half the speed is 0.5.
  EXPECT_DOUBLE_EQ(sol.efficiency(sol.pipelined_bound_s), 1.0);
  EXPECT_DOUBLE_EQ(sol.efficiency(2.0 * sol.pipelined_bound_s), 0.5);
  EXPECT_EQ(sol.efficiency(0.0), 0.0);
}

TEST(SpeedOfLight, MoreGpusLowerTheComputeFloorOnly) {
  const JobStats s8 = stats_with(100'000'000, 1 << 28, 1 << 24, 1 << 24, 1'000'000, 8, 2);
  const JobStats s16 =
      stats_with(100'000'000, 1 << 28, 1 << 24, 1 << 24, 1'000'000, 16, 4);
  const SpeedOfLight a = speed_of_light(s8, config_with(8));
  const SpeedOfLight b = speed_of_light(s16, config_with(16));
  EXPECT_NEAR(a.map_compute_s / b.map_compute_s, 2.0, 1e-9);
  // Per-node resources double too (2 -> 4 nodes).
  EXPECT_NEAR(a.h2d_s / b.h2d_s, 2.0, 1e-9);
}

}  // namespace
}  // namespace vrmr::mr
