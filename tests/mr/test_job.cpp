// Generic (non-rendering) MapReduce jobs: prove the runtime is a real
// MapReduce substrate, not a renderer with extra steps — and pin the
// pipeline behaviours the paper specifies (streaming overlap, placeholder
// discard, restriction enforcement, stage accounting).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>

#include "cluster/cluster.hpp"
#include "mr/analysis.hpp"
#include "mr/job.hpp"
#include "sim/engine.hpp"

namespace vrmr::mr {
namespace {

/// A chunk holding a range of integers [lo, hi).
class RangeChunk final : public Chunk {
 public:
  RangeChunk(std::uint32_t lo, std::uint32_t hi, std::uint64_t bytes = 1024)
      : lo_(lo), hi_(hi), bytes_(bytes) {}
  std::uint64_t device_bytes() const override { return bytes_; }
  std::string label() const override {
    return "range[" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
  }
  std::uint32_t lo() const { return lo_; }
  std::uint32_t hi() const { return hi_; }

 private:
  std::uint32_t lo_, hi_;
  std::uint64_t bytes_;
};

/// Emits (i % num_keys, i) for every i in the chunk's range, plus one
/// placeholder per `placeholders_per_chunk` to exercise the discard
/// path. Reports threads = pairs so the every-thread-emits check holds.
class ModuloMapper final : public Mapper {
 public:
  ModuloMapper(std::uint32_t num_keys, int placeholders_per_chunk)
      : num_keys_(num_keys), placeholders_(placeholders_per_chunk) {}

  MapOutcome map(gpusim::Device&, const Chunk& chunk, KvBuffer& out) override {
    const auto& range = dynamic_cast<const RangeChunk&>(chunk);
    for (std::uint32_t i = range.lo(); i < range.hi(); ++i) {
      out.append_typed(i % num_keys_, i);
    }
    for (int p = 0; p < placeholders_; ++p) out.append_placeholder();
    MapOutcome outcome;
    outcome.samples = (range.hi() - range.lo()) * 10;  // arbitrary model work
    outcome.threads = out.size();
    return outcome;
  }

 private:
  std::uint32_t num_keys_;
  int placeholders_;
};

/// Sums values per key into a shared map (reducers own disjoint keys).
class SumReducer final : public Reducer {
 public:
  explicit SumReducer(std::map<std::uint32_t, std::uint64_t>* sums) : sums_(sums) {}
  void reduce(std::uint32_t key, const std::byte* values, std::size_t count) override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t v;
      std::memcpy(&v, values + i * sizeof(std::uint32_t), sizeof(v));
      total += v;
    }
    (*sums_)[key] += total;
  }

 private:
  std::map<std::uint32_t, std::uint64_t>* sums_;
};

struct Harness {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster;
  std::map<std::uint32_t, std::uint64_t> sums;

  explicit Harness(int gpus) {
    cluster = std::make_unique<cluster::Cluster>(
        engine, cluster::ClusterConfig::with_total_gpus(gpus));
  }

  JobConfig config(std::uint32_t num_keys) {
    JobConfig cfg;
    cfg.value_size = sizeof(std::uint32_t);
    cfg.domain.num_keys = num_keys;
    return cfg;
  }

  std::unique_ptr<Job> make_job(const JobConfig& cfg, std::uint32_t num_keys,
                                int placeholders = 0) {
    auto job = std::make_unique<Job>(*cluster, cfg);
    job->set_mapper_factory([num_keys, placeholders](int, gpusim::Device&) {
      return std::make_unique<ModuloMapper>(num_keys, placeholders);
    });
    job->set_reducer_factory(
        [this](int) { return std::make_unique<SumReducer>(&sums); });
    return job;
  }
};

TEST(Job, ComputesCorrectSumsAcrossGpus) {
  constexpr std::uint32_t kKeys = 13;
  constexpr std::uint32_t kN = 10000;
  Harness h(4);
  auto job_owner = h.make_job(h.config(kKeys), kKeys);
  Job& job = *job_owner;
  for (std::uint32_t lo = 0; lo < kN; lo += 1000) {
    job.add_chunk(std::make_unique<RangeChunk>(lo, std::min(lo + 1000, kN)));
  }
  const JobStats stats = job.run();

  // Every key's expected sum: sum of all i in [0, kN) with i % kKeys == key.
  std::map<std::uint32_t, std::uint64_t> expected;
  for (std::uint32_t i = 0; i < kN; ++i) expected[i % kKeys] += i;
  EXPECT_EQ(h.sums, expected);
  EXPECT_EQ(stats.fragments, kN);
  EXPECT_EQ(stats.placeholders, 0u);
  EXPECT_EQ(stats.num_chunks, 10);
}

TEST(Job, PlaceholdersAreChargedThenDropped) {
  constexpr std::uint32_t kKeys = 5;
  Harness h(2);
  auto job_owner = h.make_job(h.config(kKeys), kKeys, /*placeholders=*/50);
  Job& job = *job_owner;
  job.add_chunk(std::make_unique<RangeChunk>(0, 100));
  const JobStats stats = job.run();
  EXPECT_EQ(stats.fragments, 100u);
  EXPECT_EQ(stats.placeholders, 50u);
  // Placeholders crossed the PCIe bus: D2H bytes cover all 150 pairs.
  EXPECT_EQ(stats.bytes_d2h, 150u * (4 + 4));
  // But never the network.
  EXPECT_EQ(stats.bytes_net, 100u * (4 + 4));
}

TEST(Job, StageBreakdownSumsToRuntime) {
  Harness h(4);
  constexpr std::uint32_t kKeys = 64;
  auto job_owner = h.make_job(h.config(kKeys), kKeys);
  Job& job = *job_owner;
  for (int c = 0; c < 8; ++c)
    job.add_chunk(std::make_unique<RangeChunk>(c * 500, (c + 1) * 500));
  const JobStats stats = job.run();
  EXPECT_GT(stats.runtime_s, 0.0);
  EXPECT_NEAR(stats.stage.map_s + stats.stage.partition_io_s + stats.stage.sort_s +
                  stats.stage.reduce_s,
              stats.runtime_s, 1e-9);
  EXPECT_GT(stats.stage.map_s, 0.0);
  EXPECT_GE(stats.t_routed, stats.t_map_done);
  EXPECT_GE(stats.t_sorted, stats.t_routed);
  EXPECT_GE(stats.runtime_s, stats.t_sorted);
}

TEST(Job, EveryThreadEmitsViolationDetected) {
  // A mapper that lies about its thread count.
  class LyingMapper final : public Mapper {
   public:
    MapOutcome map(gpusim::Device&, const Chunk&, KvBuffer& out) override {
      const std::uint32_t v = 1;
      out.append(0, &v);
      MapOutcome o;
      o.threads = 10;  // but only 1 pair emitted
      return o;
    }
  };
  Harness h(1);
  JobConfig cfg = h.config(4);
  Job job(*h.cluster, cfg);
  job.set_mapper_factory(
      [](int, gpusim::Device&) { return std::make_unique<LyingMapper>(); });
  job.set_reducer_factory([&](int) { return std::make_unique<SumReducer>(&h.sums); });
  job.add_chunk(std::make_unique<RangeChunk>(0, 1));
  EXPECT_THROW((void)job.run(), vrmr::CheckError);
}

TEST(Job, RejectsChunksLargerThanVram) {
  Harness h(1);
  JobConfig cfg = h.config(4);
  auto job_owner = h.make_job(cfg, 4);
  Job& job = *job_owner;
  const std::uint64_t vram = h.cluster->config().hw.gpu.vram_bytes;
  EXPECT_THROW(job.add_chunk(std::make_unique<RangeChunk>(0, 10, vram + 1)),
               vrmr::CheckError);
  // Exactly VRAM-sized is allowed (the restriction is "must fit").
  job.add_chunk(std::make_unique<RangeChunk>(0, 10, vram));
}

TEST(Job, OutOfCoreModeChargesDisk) {
  constexpr std::uint32_t kKeys = 8;
  auto run = [&](bool disk) {
    Harness h(2);
    JobConfig cfg = h.config(kKeys);
    cfg.include_disk_io = disk;
    auto job_owner = h.make_job(cfg, kKeys);
  Job& job = *job_owner;
    for (int c = 0; c < 4; ++c)
      job.add_chunk(std::make_unique<RangeChunk>(c * 100, (c + 1) * 100, 1 << 20));
    return job.run();
  };
  const JobStats without = run(false);
  const JobStats with = run(true);
  EXPECT_EQ(without.bytes_disk, 0u);
  EXPECT_EQ(with.bytes_disk, 4ull << 20);
  EXPECT_GT(with.disk_busy_s, 0.0);
  EXPECT_GT(with.runtime_s, without.runtime_s);
  // Identical data flow regardless of staging medium.
  EXPECT_EQ(with.fragments, without.fragments);
}

TEST(Job, GpuSortPlacementHonored) {
  constexpr std::uint32_t kKeys = 16;
  auto run = [&](SortPlacement placement) {
    Harness h(2);
    JobConfig cfg = h.config(kKeys);
    cfg.sort = placement;
    auto job_owner = h.make_job(cfg, kKeys);
  Job& job = *job_owner;
    job.add_chunk(std::make_unique<RangeChunk>(0, 5000));
    return job.run();
  };
  const JobStats cpu = run(SortPlacement::Cpu);
  for (const auto& r : cpu.per_reducer) EXPECT_FALSE(r.sorted_on_gpu);
  const JobStats gpu = run(SortPlacement::Gpu);
  bool any_gpu = false;
  for (const auto& r : gpu.per_reducer) any_gpu |= r.sorted_on_gpu;
  EXPECT_TRUE(any_gpu);
}

TEST(Job, AutoSortUsesGpuAboveThreshold) {
  constexpr std::uint32_t kKeys = 4;
  Harness h(1);
  JobConfig cfg = h.config(kKeys);
  cfg.sort = SortPlacement::Auto;
  cfg.gpu_sort_threshold_pairs = 100;  // tiny threshold
  auto job_owner = h.make_job(cfg, kKeys);
  Job& job = *job_owner;
  job.add_chunk(std::make_unique<RangeChunk>(0, 1000));
  const JobStats stats = job.run();
  EXPECT_TRUE(stats.per_reducer[0].sorted_on_gpu);
}

TEST(Job, ChunksCanBePinnedToGpus) {
  constexpr std::uint32_t kKeys = 4;
  Harness h(4);
  auto job_owner = h.make_job(h.config(kKeys), kKeys);
  Job& job = *job_owner;
  // Pin everything to GPU 2.
  for (int c = 0; c < 4; ++c)
    job.add_chunk(std::make_unique<RangeChunk>(c * 10, (c + 1) * 10), /*gpu=*/2);
  const JobStats stats = job.run();
  EXPECT_EQ(stats.per_gpu[2].chunks, 4);
  EXPECT_EQ(stats.per_gpu[0].chunks, 0);
  EXPECT_EQ(stats.per_gpu[1].chunks, 0);
  EXPECT_EQ(stats.per_gpu[3].chunks, 0);
}

TEST(Job, MoreGpusReduceMapStageTime) {
  constexpr std::uint32_t kKeys = 32;
  auto map_time = [&](int gpus) {
    Harness h(gpus);
    auto job_owner = h.make_job(h.config(kKeys), kKeys);
  Job& job = *job_owner;
    for (int c = 0; c < 16; ++c)
      job.add_chunk(std::make_unique<RangeChunk>(c * 10000, (c + 1) * 10000, 4 << 20));
    return job.run().stage.map_s;
  };
  const double one = map_time(1);
  const double four = map_time(4);
  const double sixteen = map_time(16);
  EXPECT_GT(one, four);
  EXPECT_GT(four, sixteen);
  // Mean per-GPU kernel time scales ~linearly with equal chunk deals.
  EXPECT_NEAR(one / four, 4.0, 0.5);
}

TEST(Job, IsSingleUse) {
  constexpr std::uint32_t kKeys = 4;
  Harness h(1);
  auto job_owner = h.make_job(h.config(kKeys), kKeys);
  Job& job = *job_owner;
  job.add_chunk(std::make_unique<RangeChunk>(0, 10));
  (void)job.run();
  EXPECT_THROW((void)job.run(), vrmr::CheckError);
  EXPECT_THROW(job.add_chunk(std::make_unique<RangeChunk>(0, 1)), vrmr::CheckError);
}

TEST(Job, RequiresFactoriesAndChunks) {
  Harness h(1);
  {
    Job job(*h.cluster, h.config(4));
    EXPECT_THROW((void)job.run(), vrmr::CheckError);  // no factories
  }
  {
    auto job_owner = h.make_job(h.config(4), 4);
  Job& job = *job_owner;
    EXPECT_THROW((void)job.run(), vrmr::CheckError);  // no chunks
  }
}

TEST(Job, ConfigValidation) {
  Harness h(1);
  JobConfig bad;
  EXPECT_THROW(Job(*h.cluster, bad), vrmr::CheckError);  // value_size unset
  bad.value_size = 4;
  EXPECT_THROW(Job(*h.cluster, bad), vrmr::CheckError);  // num_keys unset
  bad.domain.num_keys = 16;
  bad.partition = PartitionStrategy::Tiled;
  EXPECT_THROW(Job(*h.cluster, bad), vrmr::CheckError);  // tiled needs width
}

TEST(Job, SequentialJobsOnOneClusterAccumulateIndependently) {
  constexpr std::uint32_t kKeys = 8;
  Harness h(2);
  JobConfig cfg = h.config(kKeys);
  auto first_owner = h.make_job(cfg, kKeys);
  Job& first = *first_owner;
  first.add_chunk(std::make_unique<RangeChunk>(0, 500));
  const JobStats s1 = first.run();

  auto second_owner = h.make_job(cfg, kKeys);
  Job& second = *second_owner;
  second.add_chunk(std::make_unique<RangeChunk>(0, 500));
  const JobStats s2 = second.run();

  // Same workload => same per-job deltas even though the simulated
  // clock keeps advancing (multi-frame rendering relies on this).
  EXPECT_NEAR(s1.runtime_s, s2.runtime_s, 1e-9);
  EXPECT_EQ(s1.fragments, s2.fragments);
  EXPECT_NEAR(s1.gpu_busy_s, s2.gpu_busy_s, 1e-9);
}


TEST(Job, BufferedSendsCoalesceSmallChunks) {
  // Many small chunks per GPU: with a large send buffer, each
  // (mapper, reducer) pair posts ONE coalesced message; with a tiny
  // buffer, every chunk flushes eagerly (the paper's "once enough pairs
  // have been generated" streaming). Data flow must be identical.
  constexpr std::uint32_t kKeys = 16;
  auto run = [&](std::uint64_t buffer_bytes) {
    Harness h(8);  // 2 nodes, so inter-node messages pay real overhead
    JobConfig cfg = h.config(kKeys);
    cfg.send_buffer_bytes = buffer_bytes;
    auto job_owner = h.make_job(cfg, kKeys);
    Job& job = *job_owner;
    for (int c = 0; c < 16; ++c)
      job.add_chunk(std::make_unique<RangeChunk>(c * 100, (c + 1) * 100));
    const JobStats stats = job.run();
    return std::make_pair(stats, h.sums);
  };
  const auto [coalesced, sums_a] = run(64 << 20);
  const auto [eager, sums_b] = run(1);
  EXPECT_EQ(sums_a, sums_b);
  EXPECT_EQ(coalesced.fragments, eager.fragments);
  EXPECT_EQ(coalesced.bytes_net, eager.bytes_net);
  // Coalesced: <= one message per (mapper, reducer) pair; eager: one
  // per chunk per reducer.
  EXPECT_LE(coalesced.net_messages, 8u * 8u);
  EXPECT_GT(eager.net_messages, coalesced.net_messages);
  // Fewer messages => fewer per-message overheads => faster routing.
  EXPECT_LE(coalesced.t_routed, eager.t_routed);
}

TEST(Job, BufferedFlushHappensMidStream) {
  // With a buffer sized to a few chunks of output, flushes must happen
  // during the map phase (overlap), not only at the end.
  constexpr std::uint32_t kKeys = 4;
  Harness h(1);
  JobConfig cfg = h.config(kKeys);
  // Each chunk emits 400 pairs -> 100 pairs x 8 B... buffer of ~2
  // chunks' worth per reducer (single reducer gets everything).
  cfg.send_buffer_bytes = 2 * 400 * (4 + 4);
  auto job_owner = h.make_job(cfg, kKeys);
  Job& job = *job_owner;
  for (int c = 0; c < 10; ++c)
    job.add_chunk(std::make_unique<RangeChunk>(c * 400, (c + 1) * 400));
  const JobStats stats = job.run();
  // 10 chunks x 400 pairs / (2 x 400 pairs per flush) => ~5 messages,
  // more than the single final flush but far fewer than one per chunk.
  EXPECT_GE(stats.net_messages, 4u);
  EXPECT_LE(stats.net_messages, 7u);
  EXPECT_EQ(stats.fragments, 4000u);
}

TEST(SpeedOfLight, BoundsAreConsistent) {
  constexpr std::uint32_t kKeys = 32;
  Harness h(4);
  auto job_owner = h.make_job(h.config(kKeys), kKeys);
  Job& job = *job_owner;
  for (int c = 0; c < 8; ++c)
    job.add_chunk(std::make_unique<RangeChunk>(c * 1000, (c + 1) * 1000, 1 << 20));
  const JobStats stats = job.run();
  const SpeedOfLight sol = speed_of_light(stats, h.cluster->config());
  EXPECT_GT(sol.map_compute_s, 0.0);
  EXPECT_GE(sol.serial_bound_s, sol.pipelined_bound_s);
  // The achieved runtime can never beat the pipelined bound.
  EXPECT_LE(sol.pipelined_bound_s, stats.runtime_s + 1e-12);
  EXPECT_GT(sol.efficiency(stats.runtime_s), 0.0);
  EXPECT_LE(sol.efficiency(stats.runtime_s), 1.0 + 1e-12);
}

}  // namespace
}  // namespace vrmr::mr
