#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "mr/sorter.hpp"
#include "util/rng.hpp"

namespace vrmr::mr {
namespace {

struct TaggedValue {
  std::uint32_t payload;
  std::uint32_t sequence;  // original position, for stability checks
};

KvBuffer random_buffer(std::size_t n, std::uint32_t key_range, std::uint64_t seed) {
  KvBuffer buf(sizeof(TaggedValue));
  vrmr::Pcg32 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const TaggedValue v{rng.next_u32(), static_cast<std::uint32_t>(i)};
    buf.append(rng.next_below(key_range), &v);
  }
  return buf;
}

TEST(CountingSort, EmptyInput) {
  const KvBuffer buf(8);
  const SortedGroups out = counting_sort(buf, 0, 100);
  EXPECT_EQ(out.sorted.size(), 0u);
  EXPECT_EQ(out.num_groups(), 0u);
  EXPECT_EQ(out.group_offsets.size(), 0u);
}

TEST(CountingSort, SingleKeyGroupsEverything) {
  KvBuffer buf(sizeof(TaggedValue));
  for (std::uint32_t i = 0; i < 10; ++i) {
    const TaggedValue v{i * 100, i};
    buf.append(42, &v);
  }
  const SortedGroups out = counting_sort(buf, 0, 100);
  ASSERT_EQ(out.num_groups(), 1u);
  EXPECT_EQ(out.group_keys[0], 42u);
  EXPECT_EQ(out.group_offsets[0], 0u);
  EXPECT_EQ(out.group_offsets[1], 10u);
  // Stability: sequence preserved within the group.
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out.sorted.value_as<TaggedValue>(i).sequence, i);
  }
}

TEST(CountingSort, GroupIndexIsConsistent) {
  const KvBuffer buf = random_buffer(5000, 64, 7);
  const SortedGroups out = counting_sort(buf, 0, 64);
  ASSERT_EQ(out.group_offsets.size(), out.num_groups() + 1);
  EXPECT_EQ(out.group_offsets.front(), 0u);
  EXPECT_EQ(out.group_offsets.back(), buf.size());
  // Keys strictly ascending across groups; uniform within each group.
  for (std::size_t g = 0; g < out.num_groups(); ++g) {
    if (g > 0) {
      EXPECT_LT(out.group_keys[g - 1], out.group_keys[g]);
    }
    for (std::uint32_t i = out.group_offsets[g]; i < out.group_offsets[g + 1]; ++i) {
      EXPECT_EQ(out.sorted.key(i), out.group_keys[g]);
    }
  }
}

// Property test against std::stable_sort over several sizes and key
// densities — the θ(n) specialization must agree with the general sort.
class CountingSortVsStdSort
    : public testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(CountingSortVsStdSort, MatchesStableSort) {
  const auto [n, key_range] = GetParam();
  const KvBuffer buf = random_buffer(static_cast<std::size_t>(n), key_range, 1234 + n);

  const SortedGroups out = counting_sort(buf, 0, key_range);
  ASSERT_EQ(out.sorted.size(), buf.size());

  // Reference: indices stable-sorted by key.
  std::vector<std::uint32_t> order(buf.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return buf.key(a) < buf.key(b); });

  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(out.sorted.key(i), buf.key(order[i]));
    EXPECT_EQ(std::memcmp(out.sorted.value(i), buf.value(order[i]), sizeof(TaggedValue)),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountingSortVsStdSort,
                         testing::Combine(testing::Values(1, 17, 256, 4096, 50000),
                                          testing::Values(1u, 7u, 256u, 65536u)));

TEST(CountingSort, RespectsKeyRangeOffset) {
  KvBuffer buf(4);
  const float v = 0.0f;
  buf.append(1000, &v);
  buf.append(1002, &v);
  buf.append(1000, &v);
  const SortedGroups out = counting_sort(buf, 1000, 1003);
  ASSERT_EQ(out.num_groups(), 2u);
  EXPECT_EQ(out.group_keys[0], 1000u);
  EXPECT_EQ(out.group_keys[1], 1002u);
}

TEST(CountingSort, RejectsPlaceholders) {
  KvBuffer buf(4);
  buf.append_placeholder();
  EXPECT_THROW((void)counting_sort(buf, 0, 10), vrmr::CheckError);
}

TEST(CountingSort, RejectsOutOfRangeKeys) {
  KvBuffer buf(4);
  const float v = 0.0f;
  buf.append(50, &v);
  EXPECT_THROW((void)counting_sort(buf, 0, 50), vrmr::CheckError);
  EXPECT_THROW((void)counting_sort(buf, 51, 100), vrmr::CheckError);
}

TEST(CountingSort, RejectsEmptyKeyRange) {
  KvBuffer buf(4);
  EXPECT_THROW((void)counting_sort(buf, 10, 10), vrmr::CheckError);
}

TEST(SortPlacement, ToStringNames) {
  EXPECT_STREQ(to_string(SortPlacement::Auto), "auto");
  EXPECT_STREQ(to_string(SortPlacement::Cpu), "cpu");
  EXPECT_STREQ(to_string(SortPlacement::Gpu), "gpu");
}

}  // namespace
}  // namespace vrmr::mr
