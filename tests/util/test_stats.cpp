#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vrmr {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.sum(), 0.0);
}

TEST(StatAccumulator, KnownValues) {
  StatAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulator, MergeEqualsSequential) {
  Pcg32 rng(5);
  StatAccumulator whole, lo, hi;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100 - 50;
    whole.add(v);
    (i < 400 ? lo : hi).add(v);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), whole.count());
  EXPECT_NEAR(lo.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(lo.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(lo.min(), whole.min());
  EXPECT_DOUBLE_EQ(lo.max(), whole.max());
}

TEST(StatAccumulator, MergeWithEmptySides) {
  StatAccumulator a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StatAccumulator, ResetClears) {
  StatAccumulator acc;
  acc.add(5.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.sum(), 0.0);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleSampleAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
  EXPECT_THROW((void)percentile({}, 50), CheckError);
  EXPECT_THROW((void)percentile({1.0}, 101), CheckError);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(Histogram, AsciiRendersAllBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  // One line per bin.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace vrmr
