#include <gtest/gtest.h>

#include <cmath>

#include "util/vec.hpp"

namespace vrmr {
namespace {

TEST(Vec3, ComponentwiseArithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * b, (Vec3{4, 10, 18}));
  EXPECT_EQ(b / a, (Vec3{4, 2.5f, 2}));
  EXPECT_EQ(a * 2.0f, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0f * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0f, (Vec3{0.5f, 1, 1.5f}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= Vec3{1, 1, 1};
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
  v *= 3.0f;
  EXPECT_EQ(v, (Vec3{3, 6, 9}));
  v /= 3.0f;
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
}

TEST(Vec3, DotAndCross) {
  EXPECT_FLOAT_EQ(dot(Vec3{1, 2, 3}, Vec3{4, 5, 6}), 32.0f);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_EQ(cross(Vec3{0, 1, 0}, Vec3{1, 0, 0}), (Vec3{0, 0, -1}));
  // Cross product is perpendicular to both inputs.
  const Vec3 a{1.5f, -2.0f, 0.7f};
  const Vec3 b{-0.3f, 4.0f, 2.2f};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(a, c), 0.0f, 1e-5f);
  EXPECT_NEAR(dot(b, c), 0.0f, 1e-5f);
}

TEST(Vec3, LengthAndNormalize) {
  EXPECT_FLOAT_EQ(length(Vec3{3, 4, 0}), 5.0f);
  EXPECT_FLOAT_EQ(length_squared(Vec3{3, 4, 0}), 25.0f);
  const Vec3 n = normalize(Vec3{3, 4, 0});
  EXPECT_NEAR(length(n), 1.0f, 1e-6f);
  // Normalizing the zero vector must not produce NaN.
  const Vec3 z = normalize(Vec3{0, 0, 0});
  EXPECT_EQ(z, (Vec3{0, 0, 0}));
}

TEST(Vec3, MinMaxClampLerp) {
  const Vec3 a{1, 5, 3};
  const Vec3 b{2, 4, 3};
  EXPECT_EQ(min(a, b), (Vec3{1, 4, 3}));
  EXPECT_EQ(max(a, b), (Vec3{2, 5, 3}));
  EXPECT_EQ(clamp(Vec3{-1, 10, 2}, Vec3{0, 0, 0}, Vec3{5, 5, 5}), (Vec3{0, 5, 2}));
  EXPECT_EQ(lerp(Vec3{0, 0, 0}, Vec3{2, 4, 6}, 0.5f), (Vec3{1, 2, 3}));
  EXPECT_FLOAT_EQ(lerpf(1.0f, 3.0f, 0.25f), 1.5f);
  EXPECT_FLOAT_EQ(clampf(7.0f, 0.0f, 5.0f), 5.0f);
  EXPECT_FLOAT_EQ(clampf(-7.0f, 0.0f, 5.0f), 0.0f);
}

TEST(Vec3, IndexAccess) {
  Vec3 v{7, 8, 9};
  EXPECT_FLOAT_EQ(v[0], 7);
  EXPECT_FLOAT_EQ(v[1], 8);
  EXPECT_FLOAT_EQ(v[2], 9);
  v[1] = 42;
  EXPECT_FLOAT_EQ(v.y, 42);
}

TEST(Vec4, BasicOps) {
  const Vec4 a{1, 2, 3, 4};
  const Vec4 b{5, 6, 7, 8};
  EXPECT_EQ(a + b, (Vec4{6, 8, 10, 12}));
  EXPECT_EQ(b - a, (Vec4{4, 4, 4, 4}));
  EXPECT_EQ(a * 2.0f, (Vec4{2, 4, 6, 8}));
  EXPECT_FLOAT_EQ(dot(a, b), 70.0f);
  EXPECT_EQ(a.xyz(), (Vec3{1, 2, 3}));
  EXPECT_EQ(lerp(a, b, 0.5f), (Vec4{3, 4, 5, 6}));
}

TEST(Int3, ArithmeticAndVolume) {
  const Int3 a{1, 2, 3};
  const Int3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Int3{5, 7, 9}));
  EXPECT_EQ(b - a, (Int3{3, 3, 3}));
  EXPECT_EQ(a * 3, (Int3{3, 6, 9}));
  EXPECT_EQ(a.volume(), 6);
  // 1024^3 must not overflow 32 bits.
  EXPECT_EQ((Int3{1024, 1024, 1024}).volume(), 1073741824LL);
  EXPECT_EQ((Int3{2048, 2048, 2048}).volume(), 8589934592LL);
}

TEST(Int3, MinMaxAndConversion) {
  EXPECT_EQ(min(Int3{1, 5, 3}, Int3{2, 4, 3}), (Int3{1, 4, 3}));
  EXPECT_EQ(max(Int3{1, 5, 3}, Int3{2, 4, 3}), (Int3{2, 5, 3}));
  EXPECT_EQ(to_vec3(Int3{1, 2, 3}), (Vec3{1.0f, 2.0f, 3.0f}));
}

TEST(CeilDiv, Cases) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div64(1LL << 40, 3), ((1LL << 40) + 2) / 3);
}

}  // namespace
}  // namespace vrmr
