// Compilation check for the public umbrella header: everything the
// README advertises must be reachable through one include.

#include "vrmr.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, PublicApiIsReachable) {
  vrmr::sim::Engine engine;
  vrmr::cluster::Cluster cluster(engine,
                                 vrmr::cluster::ClusterConfig::with_total_gpus(2));
  const vrmr::volren::Volume volume = vrmr::volren::datasets::skull({16, 16, 16});
  vrmr::volren::RenderOptions options;
  options.image_width = 32;
  options.image_height = 32;
  const vrmr::volren::RenderResult result =
      vrmr::volren::render_mapreduce(cluster, volume, options);
  EXPECT_EQ(result.image.width(), 32);
  EXPECT_GT(result.stats.runtime_s, 0.0);
}

}  // namespace
