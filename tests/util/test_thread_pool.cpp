#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace vrmr {
namespace {

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  pool.parallel_for(5, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, 20, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ThreadPool, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::int64_t) { ++count; }, /*grain=*/100);
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(0, 100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::int64_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, [&](std::int64_t) {
    // Recursive use from a worker thread must run inline, not deadlock.
    pool.parallel_for(0, 8, [&](std::int64_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ManySmallDispatches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(0, 16, [&](std::int64_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 1600);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool* a = &ThreadPool::global();
  ThreadPool* b = &ThreadPool::global();
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, LargeRangeWithGrainChunksCorrectly) {
  ThreadPool pool(4);
  constexpr std::int64_t n = 1 << 18;
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(0, n, [&](std::int64_t i) { sum += i; }, /*grain=*/4096);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace vrmr
