#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/color.hpp"
#include "util/rng.hpp"

namespace vrmr {
namespace {

TEST(Rgba, BasicAlgebra) {
  const Rgba a{0.1f, 0.2f, 0.3f, 0.4f};
  const Rgba b{0.5f, 0.6f, 0.7f, 0.8f};
  EXPECT_EQ(a + b, (Rgba{0.6f, 0.8f, 1.0f, 1.2f}));
  EXPECT_EQ(a * 2.0f, (Rgba{0.2f, 0.4f, 0.6f, 0.8f}));
  EXPECT_EQ(Rgba::transparent(), (Rgba{0, 0, 0, 0}));
}

TEST(CompositeOver, TransparentIsIdentity) {
  const Rgba c{0.2f, 0.3f, 0.4f, 0.5f};
  EXPECT_EQ(composite_over(Rgba::transparent(), c), c);
  EXPECT_EQ(composite_over(c, Rgba::transparent()), c);
}

TEST(CompositeOver, OpaqueFrontBlocksBack) {
  const Rgba front{0.9f, 0.1f, 0.2f, 1.0f};
  const Rgba back{0.0f, 1.0f, 0.0f, 1.0f};
  EXPECT_EQ(composite_over(front, back), front);
}

TEST(CompositeOver, FiftyPercentMix) {
  const Rgba front{0.5f, 0.0f, 0.0f, 0.5f};  // premultiplied 50% red
  const Rgba back{0.0f, 1.0f, 0.0f, 1.0f};   // opaque green
  const Rgba out = composite_over(front, back);
  EXPECT_FLOAT_EQ(out.r, 0.5f);
  EXPECT_FLOAT_EQ(out.g, 0.5f);
  EXPECT_FLOAT_EQ(out.a, 1.0f);
}

// Associativity is what makes partial-ray compositing (per brick, then
// across bricks in the reducer) equivalent to a single pass. Exact in
// real arithmetic; verify to float tolerance over random chains.
TEST(CompositeOver, AssociativeToFloatTolerance) {
  Pcg32 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Rgba> frags;
    const int n = 2 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < n; ++i) {
      const float a = rng.next_float();
      frags.push_back(Rgba{rng.next_float() * a, rng.next_float() * a,
                           rng.next_float() * a, a});
    }
    // Left fold.
    Rgba left = Rgba::transparent();
    for (const Rgba& f : frags) left = composite_over(left, f);
    // Split at a random point, fold halves, then combine.
    const size_t split = 1 + rng.next_below(static_cast<std::uint32_t>(n - 1));
    Rgba lo = Rgba::transparent(), hi = Rgba::transparent();
    for (size_t i = 0; i < split; ++i) lo = composite_over(lo, frags[i]);
    for (size_t i = split; i < frags.size(); ++i) hi = composite_over(hi, frags[i]);
    const Rgba combined = composite_over(lo, hi);
    EXPECT_NEAR(left.r, combined.r, 1e-5f);
    EXPECT_NEAR(left.g, combined.g, 1e-5f);
    EXPECT_NEAR(left.b, combined.b, 1e-5f);
    EXPECT_NEAR(left.a, combined.a, 1e-5f);
  }
}

TEST(BlendBackground, FullyTransparentShowsBackground) {
  const Vec3 bg{0.1f, 0.2f, 0.3f};
  EXPECT_EQ(blend_background(Rgba::transparent(), bg), bg);
}

TEST(BlendBackground, OpaqueHidesBackground) {
  const Rgba accum{0.6f, 0.5f, 0.4f, 1.0f};
  EXPECT_EQ(blend_background(accum, Vec3{1, 1, 1}), (Vec3{0.6f, 0.5f, 0.4f}));
}

TEST(Premultiply, ClampsAlpha) {
  const Rgba p = premultiply(Vec4{1.0f, 1.0f, 1.0f, 2.0f});
  EXPECT_FLOAT_EQ(p.a, 1.0f);
  const Rgba q = premultiply(Vec4{1.0f, 1.0f, 1.0f, -1.0f});
  EXPECT_FLOAT_EQ(q.a, 0.0f);
  EXPECT_FLOAT_EQ(q.r, 0.0f);
}

TEST(PremultiplyCorrected, ExponentOneMatchesPlain) {
  const Vec4 s{0.4f, 0.5f, 0.6f, 0.3f};
  const Rgba a = premultiply_corrected(s, 1.0f);
  const Rgba b = premultiply(s);
  EXPECT_NEAR(a.a, b.a, 1e-6f);
  EXPECT_NEAR(a.r, b.r, 1e-6f);
}

// Opacity correction: two half-steps must compose to one full step.
// alpha' for exponent 0.5 applied twice == alpha (within tolerance).
TEST(PremultiplyCorrected, HalfStepsComposeToFullStep) {
  for (float alpha : {0.1f, 0.3f, 0.5f, 0.8f, 0.95f}) {
    const Vec4 s{1.0f, 1.0f, 1.0f, alpha};
    const Rgba half = premultiply_corrected(s, 0.5f);
    const Rgba two = composite_over(half, half);
    EXPECT_NEAR(two.a, alpha, 1e-5f) << "alpha=" << alpha;
  }
}

TEST(PremultiplyCorrected, LargerExponentIncreasesOpacity) {
  const Vec4 s{1.0f, 1.0f, 1.0f, 0.3f};
  EXPECT_GT(premultiply_corrected(s, 2.0f).a, premultiply_corrected(s, 1.0f).a);
  EXPECT_LT(premultiply_corrected(s, 0.5f).a, premultiply_corrected(s, 1.0f).a);
}

}  // namespace
}  // namespace vrmr
