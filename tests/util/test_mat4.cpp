#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/mat4.hpp"

namespace vrmr {
namespace {

void expect_mat_near(const Mat4& a, const Mat4& b, float tol = 1e-5f) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "at (" << i << "," << j << ")";
}

TEST(Mat4, IdentityIsMultiplicativeNeutral) {
  const Mat4 id = Mat4::identity();
  const Mat4 m = Mat4::translate({1, 2, 3}) * Mat4::scale({2, 2, 2});
  expect_mat_near(m * id, m);
  expect_mat_near(id * m, m);
}

TEST(Mat4, TranslateMovesPoints) {
  const Mat4 t = Mat4::translate({1, -2, 3});
  EXPECT_EQ(t.transform_point({0, 0, 0}), (Vec3{1, -2, 3}));
  // Directions are unaffected by translation.
  EXPECT_EQ(t.transform_vector({1, 1, 1}), (Vec3{1, 1, 1}));
}

TEST(Mat4, ScaleScalesPointsAndVectors) {
  const Mat4 s = Mat4::scale({2, 3, 4});
  EXPECT_EQ(s.transform_point({1, 1, 1}), (Vec3{2, 3, 4}));
  EXPECT_EQ(s.transform_vector({1, 1, 1}), (Vec3{2, 3, 4}));
}

TEST(Mat4, RotationPreservesLengthAndAngle) {
  const Mat4 r = Mat4::rotate({0, 0, 1}, static_cast<float>(M_PI / 2)); // 90° about z
  const Vec3 rotated = r.transform_vector({1, 0, 0});
  EXPECT_NEAR(rotated.x, 0.0f, 1e-6f);
  EXPECT_NEAR(rotated.y, 1.0f, 1e-6f);
  EXPECT_NEAR(rotated.z, 0.0f, 1e-6f);
  const Vec3 v{0.3f, -0.7f, 0.9f};
  EXPECT_NEAR(length(r.transform_vector(v)), length(v), 1e-5f);
}

TEST(Mat4, InverseRoundTrips) {
  const Mat4 m = Mat4::translate({1, 2, 3}) *
                 Mat4::rotate(normalize(Vec3{1, 2, -1}), 0.8f) * Mat4::scale({2, 0.5f, 3});
  expect_mat_near(m * m.inverse(), Mat4::identity(), 1e-4f);
  expect_mat_near(m.inverse() * m, Mat4::identity(), 1e-4f);
}

TEST(Mat4, InverseOfSingularThrows) {
  EXPECT_THROW((void)Mat4::zero().inverse(), CheckError);
  EXPECT_THROW((void)Mat4::scale({1, 1, 0}).inverse(), CheckError);
}

TEST(Mat4, TransposeInvolution) {
  const Mat4 m = Mat4::rotate({0, 1, 0}, 0.3f) * Mat4::translate({4, 5, 6});
  expect_mat_near(m.transposed().transposed(), m);
}

TEST(Mat4, LookAtMapsEyeToOriginAndTargetToMinusZ) {
  const Vec3 eye{3, 4, 5};
  const Vec3 target{0, 0, 0};
  const Mat4 view = Mat4::look_at(eye, target, {0, 1, 0});
  const Vec3 eye_cam = view.transform_point(eye);
  EXPECT_NEAR(eye_cam.x, 0.0f, 1e-5f);
  EXPECT_NEAR(eye_cam.y, 0.0f, 1e-5f);
  EXPECT_NEAR(eye_cam.z, 0.0f, 1e-5f);
  const Vec3 target_cam = view.transform_point(target);
  EXPECT_NEAR(target_cam.x, 0.0f, 1e-4f);
  EXPECT_NEAR(target_cam.y, 0.0f, 1e-4f);
  EXPECT_LT(target_cam.z, 0.0f);  // right-handed: forward is -z
}

TEST(Mat4, PerspectiveMapsFrustumCorners) {
  const float fovy = static_cast<float>(M_PI / 2);  // tan(fovy/2) = 1
  const Mat4 proj = Mat4::perspective(fovy, 1.0f, 1.0f, 10.0f);
  // A point on the near plane's top edge maps to ndc y = +1.
  const Vec3 top_near = proj.transform_point({0, 1, -1});
  EXPECT_NEAR(top_near.y, 1.0f, 1e-5f);
  EXPECT_NEAR(top_near.z, -1.0f, 1e-5f);
  // A point on the far plane maps to ndc z = +1.
  const Vec3 far_center = proj.transform_point({0, 0, -10});
  EXPECT_NEAR(far_center.z, 1.0f, 1e-5f);
}

TEST(Mat4, PerspectiveRejectsBadArguments) {
  EXPECT_THROW((void)Mat4::perspective(-1.0f, 1.0f, 0.1f, 10.0f), CheckError);
  EXPECT_THROW((void)Mat4::perspective(1.0f, 1.0f, 10.0f, 0.1f), CheckError);
}

}  // namespace
}  // namespace vrmr
