#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace vrmr {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Pcg32, DeterministicAcrossInstances) {
  Pcg32 a(99, 7);
  Pcg32 b(99, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(99, 1);
  Pcg32 b(99, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Pcg32, FloatInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(v, -3.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Pcg32, NextBelowIsInRangeAndRoughlyUniform) {
  Pcg32 rng(13);
  constexpr std::uint32_t bound = 10;
  std::vector<int> counts(bound, 0);
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const std::uint32_t v = rng.next_below(bound);
    ASSERT_LT(v, bound);
    ++counts[v];
  }
  // Each bin should be within 10% of the expected count.
  for (std::uint32_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], draws / bound, draws / bound / 10) << "bin " << b;
  }
}

TEST(Pcg32, NextBelowZeroBound) {
  Pcg32 rng(17);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Pcg32, MeanOfUnitDrawsNearHalf) {
  Pcg32 rng(19);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_float();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(LatticeNoise, DeterministicAndUnitRange) {
  for (int i = 0; i < 100; ++i) {
    const float a = lattice_noise(i, i * 3, -i, 42);
    const float b = lattice_noise(i, i * 3, -i, 42);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0.0f);
    EXPECT_LT(a, 1.0f);
  }
}

TEST(LatticeNoise, SeedChangesField) {
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (lattice_noise(i, 0, 0, 1) == lattice_noise(i, 0, 0, 2)) ++same;
  }
  EXPECT_LE(same, 2);
}

TEST(HashU32, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip many output bits on average.
  int total_flips = 0;
  for (std::uint32_t x = 1; x < 100; ++x) {
    const std::uint32_t h0 = hash_u32(x);
    const std::uint32_t h1 = hash_u32(x ^ 1u);
    total_flips += __builtin_popcount(h0 ^ h1);
  }
  EXPECT_GT(total_flips / 99.0, 10.0);  // expect ~16 of 32 bits
}

}  // namespace
}  // namespace vrmr
