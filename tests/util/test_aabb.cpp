#include <gtest/gtest.h>

#include <limits>

#include "util/aabb.hpp"

namespace vrmr {
namespace {

constexpr float kInf = std::numeric_limits<float>::max();

TEST(Aabb, EmptyAndExpand) {
  Aabb box;
  EXPECT_TRUE(box.empty());
  box.expand(Vec3{1, 2, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo, (Vec3{1, 2, 3}));
  EXPECT_EQ(box.hi, (Vec3{1, 2, 3}));
  box.expand(Vec3{-1, 5, 0});
  EXPECT_EQ(box.lo, (Vec3{-1, 2, 0}));
  EXPECT_EQ(box.hi, (Vec3{1, 5, 3}));
  EXPECT_EQ(box.extent(), (Vec3{2, 3, 3}));
}

TEST(Aabb, ContainsAndOverlaps) {
  const Aabb a({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(a.contains({0.5f, 0.5f, 0.5f}));
  EXPECT_TRUE(a.contains({0, 0, 0}));     // faces inclusive
  EXPECT_TRUE(a.contains({1, 1, 1}));
  EXPECT_FALSE(a.contains({1.001f, 0.5f, 0.5f}));
  const Aabb b({0.5f, 0.5f, 0.5f}, {2, 2, 2});
  const Aabb c({1.5f, 1.5f, 1.5f}, {2, 2, 2});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(AabbIntersect, AxisRayHits) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  float t0 = 0, t1 = 0;
  const Ray ray{{-1, 0.5f, 0.5f}, {1, 0, 0}};
  ASSERT_TRUE(box.intersect(ray, 0.0f, kInf, &t0, &t1));
  EXPECT_FLOAT_EQ(t0, 1.0f);
  EXPECT_FLOAT_EQ(t1, 2.0f);
}

TEST(AabbIntersect, DiagonalRayHits) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  float t0 = 0, t1 = 0;
  const Ray ray{{-1, -1, -1}, {1, 1, 1}};  // unnormalized on purpose
  ASSERT_TRUE(box.intersect(ray, 0.0f, kInf, &t0, &t1));
  EXPECT_FLOAT_EQ(t0, 1.0f);
  EXPECT_FLOAT_EQ(t1, 2.0f);
}

TEST(AabbIntersect, MissesBeside) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  const Ray ray{{-1, 2, 0.5f}, {1, 0, 0}};
  EXPECT_FALSE(box.intersect(ray, 0.0f, kInf, nullptr, nullptr));
}

TEST(AabbIntersect, MissesBehind) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  // Box is behind the ray origin; t range [0, inf) excludes it.
  const Ray ray{{2, 0.5f, 0.5f}, {1, 0, 0}};
  EXPECT_FALSE(box.intersect(ray, 0.0f, kInf, nullptr, nullptr));
}

TEST(AabbIntersect, OriginInsideClampsToTmin) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  float t0 = -1, t1 = -1;
  const Ray ray{{0.5f, 0.5f, 0.5f}, {0, 0, 1}};
  ASSERT_TRUE(box.intersect(ray, 0.0f, kInf, &t0, &t1));
  EXPECT_FLOAT_EQ(t0, 0.0f);
  EXPECT_FLOAT_EQ(t1, 0.5f);
}

TEST(AabbIntersect, ParallelRayInsideSlab) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  float t0 = 0, t1 = 0;
  const Ray ray{{-1, 0.5f, 0.5f}, {1, 0, 0}};  // parallel to y and z slabs
  ASSERT_TRUE(box.intersect(ray, 0.0f, kInf, &t0, &t1));
  // Parallel ray outside a slab misses.
  const Ray outside{{-1, 1.5f, 0.5f}, {1, 0, 0}};
  EXPECT_FALSE(box.intersect(outside, 0.0f, kInf, nullptr, nullptr));
}

TEST(AabbIntersect, RespectsClipRange) {
  const Aabb box({0, 0, 0}, {1, 1, 1});
  const Ray ray{{-1, 0.5f, 0.5f}, {1, 0, 0}};
  float t0 = 0, t1 = 0;
  // Clip range ends before the box: miss.
  EXPECT_FALSE(box.intersect(ray, 0.0f, 0.5f, &t0, &t1));
  // Clip range starts inside the box: entry clamps to t_min.
  ASSERT_TRUE(box.intersect(ray, 1.5f, kInf, &t0, &t1));
  EXPECT_FLOAT_EQ(t0, 1.5f);
  EXPECT_FLOAT_EQ(t1, 2.0f);
}

// The property the bricked renderer depends on: two boxes sharing a
// face partition a crossing ray's interval exactly — A's exit equals
// B's entry bit-for-bit when the shared plane is the same float.
TEST(AabbIntersect, SharedFacePartitionsRayExactly) {
  const float mid = 0.3f;
  const Aabb a({0, 0, 0}, {mid, 1, 1});
  const Aabb b({mid, 0, 0}, {1, 1, 1});
  const Ray ray{{-0.2f, 0.41f, 0.77f}, normalize(Vec3{0.9f, 0.1f, -0.05f})};
  float a0 = 0, a1 = 0, b0 = 0, b1 = 0;
  ASSERT_TRUE(a.intersect(ray, 0.0f, kInf, &a0, &a1));
  ASSERT_TRUE(b.intersect(ray, 0.0f, kInf, &b0, &b1));
  EXPECT_EQ(a1, b0);  // bitwise equal, not just approximately
}

}  // namespace
}  // namespace vrmr
