#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace vrmr {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), CheckError);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
}

TEST(Table, CsvBasics) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x"});
  t.add_row({"short"});
  t.add_row({"a-much-longer-cell"});
  const std::string s = t.to_string();
  // Every data line has the same length.
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t eol = s.find('\n', pos);
    const std::string line = s.substr(pos, eol - pos);
    if (first_len == std::string::npos) first_len = line.size();
    EXPECT_EQ(line.size(), first_len);
    pos = eol + 1;
  }
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_NE(format_bytes(2048).find("KiB"), std::string::npos);
  EXPECT_NE(format_bytes(5ULL << 20).find("MiB"), std::string::npos);
  EXPECT_NE(format_bytes(3ULL << 30).find("GiB"), std::string::npos);
}

TEST(Units, FormatSeconds) {
  EXPECT_NE(format_seconds(2.5).find("s"), std::string::npos);
  EXPECT_NE(format_seconds(0.002).find("ms"), std::string::npos);
  EXPECT_NE(format_seconds(2e-6).find("us"), std::string::npos);
  EXPECT_NE(format_seconds(2e-9).find("ns"), std::string::npos);
}

TEST(Units, FormatRate) {
  EXPECT_NE(format_rate(1.5e9, "B").find("GB/s"), std::string::npos);
  EXPECT_NE(format_rate(2.5e6, "vox").find("Mvox/s"), std::string::npos);
  EXPECT_NE(format_rate(42.0, "f").find("f/s"), std::string::npos);
}

}  // namespace
}  // namespace vrmr
