#include <gtest/gtest.h>

#include "util/log.hpp"

namespace vrmr {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Logger::instance().level()) {}
  ~LogLevelGuard() { Logger::instance().set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logger, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

TEST(Logger, DefaultLevelSuppressesInfo) {
  const LogLevelGuard guard;
  Logger::instance().set_level(LogLevel::Warn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::Info));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::Debug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::Warn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::Error));
}

TEST(Logger, LevelOrderingIsMonotonic) {
  const LogLevelGuard guard;
  Logger::instance().set_level(LogLevel::Trace);
  for (const LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                               LogLevel::Warn, LogLevel::Error}) {
    EXPECT_TRUE(Logger::instance().enabled(level));
  }
  Logger::instance().set_level(LogLevel::Off);
  for (const LogLevel level : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                               LogLevel::Warn, LogLevel::Error}) {
    EXPECT_FALSE(Logger::instance().enabled(level));
  }
}

TEST(Logger, MacroShortCircuitsWhenDisabled) {
  const LogLevelGuard guard;
  Logger::instance().set_level(LogLevel::Off);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  VRMR_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  Logger::instance().set_level(LogLevel::Trace);
  VRMR_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Logger, WriteIsSafeAtAllLevels) {
  const LogLevelGuard guard;
  Logger::instance().set_level(LogLevel::Trace);
  // Exercise every level's formatting path (output goes to clog/cerr).
  VRMR_TRACE("t") << "trace " << 1;
  VRMR_DEBUG("t") << "debug " << 2.5;
  VRMR_INFO("t") << "info " << "string";
  VRMR_WARN("t") << "warn";
  VRMR_ERROR("t") << "error";
}

}  // namespace
}  // namespace vrmr
