// Recoverable I/O error paths: BrickFileReader::open / try_read_brick
// return IoError values instead of CHECK-aborting, the reader stays
// usable after a failed read, and the throwing back-compat entry points
// still throw. A corrupt file is a servable condition for the farm
// (fall back to a peer or degrade), not a process abort.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/brick_file.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrmr::io {
namespace {

namespace fs = std::filesystem;

class BrickFileErrorTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vrmr_brickfile_err_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const std::string& name) const { return dir_ / name; }

  /// Writes a healthy 2-brick file and returns its path.
  fs::path write_good(const std::string& name) {
    const Int3 dims{4, 4, 4};
    BrickFileWriter writer(path(name), Int3{8, 4, 4}, 4, 0, 2);
    writer.append_brick(Int3{0, 0, 0}, dims, payload(dims, 1));
    writer.append_brick(Int3{1, 0, 0}, dims, payload(dims, 2));
    writer.finalize();
    return path(name);
  }

  static std::vector<float> payload(Int3 dims, std::uint64_t seed) {
    std::vector<float> v(static_cast<size_t>(dims.volume()));
    Pcg32 rng(seed);
    for (auto& x : v) x = rng.next_float();
    return v;
  }

  fs::path dir_;
};

TEST_F(BrickFileErrorTest, OpenMissingFileReturnsOpenFailed) {
  const auto result = BrickFileReader::open(path("nope.vrbf"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, IoError::Code::OpenFailed);
  EXPECT_FALSE(result.error().message.empty());
}

TEST_F(BrickFileErrorTest, OpenRejectsBadMagic) {
  {
    std::ofstream out(path("junk.vrbf"), std::ios::binary);
    out << "this is not a VRBF file, not even close";
  }
  const auto result = BrickFileReader::open(path("junk.vrbf"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, IoError::Code::BadMagic);
}

TEST_F(BrickFileErrorTest, OpenRejectsTruncatedDirectory) {
  const fs::path good = write_good("whole.vrbf");
  // Keep the magic + a few header bytes, cut the directory short.
  std::vector<char> bytes(16);
  {
    std::ifstream in(good, std::ios::binary);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    std::ofstream out(path("cut.vrbf"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto result = BrickFileReader::open(path("cut.vrbf"));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, IoError::Code::TruncatedDirectory);
}

TEST_F(BrickFileErrorTest, TryReadBrickSurvivesTruncatedPayload) {
  const fs::path good = write_good("trunc.vrbf");
  auto reader = BrickFileReader::open(good);
  ASSERT_TRUE(reader.has_value());
  // Chop the file mid-way through brick 1's payload. Brick 0 must keep
  // reading: a partial file loses bricks, not the whole dataset.
  const BrickRecord& last = reader->record(1);
  fs::resize_file(good, last.offset + last.bytes / 2);
  const auto bad = reader->try_read_brick(1);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, IoError::Code::TruncatedPayload);
  const auto still_good = reader->try_read_brick(0);
  ASSERT_TRUE(still_good.has_value());
  EXPECT_EQ(*still_good, payload(Int3{4, 4, 4}, 1));
  // The reader did not wedge: retrying the bad brick fails identically
  // instead of corrupting stream state.
  EXPECT_FALSE(reader->try_read_brick(1).has_value());
}

TEST_F(BrickFileErrorTest, TryReadBrickRejectsBadIndex) {
  auto reader = BrickFileReader::open(write_good("idx.vrbf"));
  ASSERT_TRUE(reader.has_value());
  const auto low = reader->try_read_brick(-1);
  ASSERT_FALSE(low.has_value());
  EXPECT_EQ(low.error().code, IoError::Code::BadIndex);
  const auto high = reader->try_read_brick(2);
  ASSERT_FALSE(high.has_value());
  EXPECT_EQ(high.error().code, IoError::Code::BadIndex);
}

TEST_F(BrickFileErrorTest, ThrowingEntryPointsStillThrow) {
  // Back-compat contract: the original constructor and read_brick keep
  // CHECK-throwing so existing callers fail loudly, while open /
  // try_read_brick carry the recoverable path.
  EXPECT_THROW(BrickFileReader(path("missing.vrbf")), CheckError);
  const fs::path good = write_good("throwing.vrbf");
  BrickFileReader reader(good);
  const BrickRecord& last = reader.record(1);
  fs::resize_file(good, last.offset + last.bytes / 2);
  EXPECT_THROW(reader.read_brick(1), CheckError);
  EXPECT_NO_THROW(reader.read_brick(0));
}

}  // namespace
}  // namespace vrmr::io
