#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/brick_file.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrmr::io {
namespace {

namespace fs = std::filesystem;

class BrickFileTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("vrmr_brickfile_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const std::string& name) const { return dir_ / name; }

  fs::path dir_;
};

std::vector<float> random_payload(Int3 dims, std::uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(dims.volume()));
  Pcg32 rng(seed);
  for (auto& x : v) x = rng.next_float();
  return v;
}

TEST_F(BrickFileTest, RoundTripsHeaderAndPayloads) {
  const Int3 volume_dims{32, 32, 16};
  const Int3 brick_dims{18, 18, 18};  // padded 16+2 ghost
  std::vector<std::vector<float>> payloads;
  {
    BrickFileWriter writer(path("vol.vrbf"), volume_dims, 16, 1, 4);
    for (int i = 0; i < 4; ++i) {
      payloads.push_back(random_payload(brick_dims, 100 + i));
      writer.append_brick(Int3{i % 2, i / 2, 0}, brick_dims, payloads.back());
    }
    writer.finalize();
  }

  BrickFileReader reader(path("vol.vrbf"));
  EXPECT_EQ(reader.header().volume_dims, volume_dims);
  EXPECT_EQ(reader.header().brick_size, 16);
  EXPECT_EQ(reader.header().ghost, 1);
  ASSERT_EQ(reader.num_bricks(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.record(i).grid_pos, (Int3{i % 2, i / 2, 0}));
    EXPECT_EQ(reader.record(i).padded_dims, brick_dims);
    EXPECT_EQ(reader.read_brick(i), payloads[static_cast<size_t>(i)]);
  }
}

TEST_F(BrickFileTest, RandomAccessOrderIndependent) {
  const Int3 dims{4, 4, 4};
  {
    BrickFileWriter writer(path("ra.vrbf"), Int3{8, 4, 4}, 4, 0, 2);
    writer.append_brick(Int3{0, 0, 0}, dims, random_payload(dims, 1));
    writer.append_brick(Int3{1, 0, 0}, dims, random_payload(dims, 2));
    writer.finalize();
  }
  BrickFileReader reader(path("ra.vrbf"));
  // Read out of order, repeatedly.
  const auto second = reader.read_brick(1);
  const auto first = reader.read_brick(0);
  EXPECT_EQ(first, random_payload(dims, 1));
  EXPECT_EQ(second, random_payload(dims, 2));
  EXPECT_EQ(reader.read_brick(1), second);
}

TEST_F(BrickFileTest, WriterValidatesPayloadSize) {
  BrickFileWriter writer(path("bad.vrbf"), Int3{8, 8, 8}, 8, 0, 1);
  std::vector<float> wrong(10);
  EXPECT_THROW(writer.append_brick(Int3{0, 0, 0}, Int3{8, 8, 8}, wrong),
               vrmr::CheckError);
  writer.append_brick(Int3{0, 0, 0}, Int3{8, 8, 8}, random_payload(Int3{8, 8, 8}, 7));
  writer.finalize();
}

TEST_F(BrickFileTest, WriterRejectsExtraBricks) {
  BrickFileWriter writer(path("extra.vrbf"), Int3{4, 4, 4}, 4, 0, 1);
  writer.append_brick(Int3{0, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 1));
  EXPECT_THROW(
      writer.append_brick(Int3{1, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 2)),
      vrmr::CheckError);
}

TEST_F(BrickFileTest, FinalizeRequiresAllBricks) {
  BrickFileWriter writer(path("short.vrbf"), Int3{8, 4, 4}, 4, 0, 2);
  writer.append_brick(Int3{0, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 1));
  EXPECT_THROW(writer.finalize(), vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderRejectsBadMagic) {
  {
    std::ofstream out(path("junk.vrbf"), std::ios::binary);
    const std::uint32_t junk = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&junk), 4);
    std::vector<char> zeros(64, 0);
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  EXPECT_THROW(BrickFileReader reader(path("junk.vrbf")), vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderRejectsMissingFile) {
  EXPECT_THROW(BrickFileReader reader(path("nonexistent.vrbf")), vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderRejectsOutOfRangeBrickIndex) {
  {
    BrickFileWriter writer(path("one.vrbf"), Int3{4, 4, 4}, 4, 0, 1);
    writer.append_brick(Int3{0, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 3));
    writer.finalize();
  }
  BrickFileReader reader(path("one.vrbf"));
  EXPECT_THROW((void)reader.read_brick(1), vrmr::CheckError);
  EXPECT_THROW((void)reader.record(-1), vrmr::CheckError);
}

TEST_F(BrickFileTest, NonUniformPaddedDimsSupported) {
  // Edge bricks have smaller padded dims; the directory must carry them.
  {
    BrickFileWriter writer(path("edge.vrbf"), Int3{10, 4, 4}, 8, 1, 2);
    writer.append_brick(Int3{0, 0, 0}, Int3{9, 4, 4}, random_payload(Int3{9, 4, 4}, 1));
    writer.append_brick(Int3{1, 0, 0}, Int3{3, 4, 4}, random_payload(Int3{3, 4, 4}, 2));
    writer.finalize();
  }
  BrickFileReader reader(path("edge.vrbf"));
  EXPECT_EQ(reader.record(0).padded_dims, (Int3{9, 4, 4}));
  EXPECT_EQ(reader.record(1).padded_dims, (Int3{3, 4, 4}));
  EXPECT_EQ(reader.read_brick(1).size(), 3u * 4 * 4);
}

}  // namespace
}  // namespace vrmr::io
