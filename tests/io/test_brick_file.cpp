#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/brick_file.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrmr::io {
namespace {

namespace fs = std::filesystem;

class BrickFileTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("vrmr_brickfile_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const std::string& name) const { return dir_ / name; }

  fs::path dir_;
};

std::vector<float> random_payload(Int3 dims, std::uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(dims.volume()));
  Pcg32 rng(seed);
  for (auto& x : v) x = rng.next_float();
  return v;
}

TEST_F(BrickFileTest, RoundTripsHeaderAndPayloads) {
  const Int3 volume_dims{32, 32, 16};
  const Int3 brick_dims{18, 18, 18};  // padded 16+2 ghost
  std::vector<std::vector<float>> payloads;
  {
    BrickFileWriter writer(path("vol.vrbf"), volume_dims, 16, 1, 4);
    for (int i = 0; i < 4; ++i) {
      payloads.push_back(random_payload(brick_dims, 100 + i));
      writer.append_brick(Int3{i % 2, i / 2, 0}, brick_dims, payloads.back());
    }
    writer.finalize();
  }

  BrickFileReader reader(path("vol.vrbf"));
  EXPECT_EQ(reader.header().volume_dims, volume_dims);
  EXPECT_EQ(reader.header().brick_size, 16);
  EXPECT_EQ(reader.header().ghost, 1);
  ASSERT_EQ(reader.num_bricks(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.record(i).grid_pos, (Int3{i % 2, i / 2, 0}));
    EXPECT_EQ(reader.record(i).padded_dims, brick_dims);
    EXPECT_EQ(reader.read_brick(i), payloads[static_cast<size_t>(i)]);
  }
}

TEST_F(BrickFileTest, RandomAccessOrderIndependent) {
  const Int3 dims{4, 4, 4};
  {
    BrickFileWriter writer(path("ra.vrbf"), Int3{8, 4, 4}, 4, 0, 2);
    writer.append_brick(Int3{0, 0, 0}, dims, random_payload(dims, 1));
    writer.append_brick(Int3{1, 0, 0}, dims, random_payload(dims, 2));
    writer.finalize();
  }
  BrickFileReader reader(path("ra.vrbf"));
  // Read out of order, repeatedly.
  const auto second = reader.read_brick(1);
  const auto first = reader.read_brick(0);
  EXPECT_EQ(first, random_payload(dims, 1));
  EXPECT_EQ(second, random_payload(dims, 2));
  EXPECT_EQ(reader.read_brick(1), second);
}

TEST_F(BrickFileTest, WriterValidatesPayloadSize) {
  BrickFileWriter writer(path("bad.vrbf"), Int3{8, 8, 8}, 8, 0, 1);
  std::vector<float> wrong(10);
  EXPECT_THROW(writer.append_brick(Int3{0, 0, 0}, Int3{8, 8, 8}, wrong),
               vrmr::CheckError);
  writer.append_brick(Int3{0, 0, 0}, Int3{8, 8, 8}, random_payload(Int3{8, 8, 8}, 7));
  writer.finalize();
}

TEST_F(BrickFileTest, WriterRejectsExtraBricks) {
  BrickFileWriter writer(path("extra.vrbf"), Int3{4, 4, 4}, 4, 0, 1);
  writer.append_brick(Int3{0, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 1));
  EXPECT_THROW(
      writer.append_brick(Int3{1, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 2)),
      vrmr::CheckError);
}

TEST_F(BrickFileTest, FinalizeRequiresAllBricks) {
  BrickFileWriter writer(path("short.vrbf"), Int3{8, 4, 4}, 4, 0, 2);
  writer.append_brick(Int3{0, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 1));
  EXPECT_THROW(writer.finalize(), vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderRejectsBadMagic) {
  {
    std::ofstream out(path("junk.vrbf"), std::ios::binary);
    const std::uint32_t junk = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&junk), 4);
    std::vector<char> zeros(64, 0);
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }
  EXPECT_THROW(BrickFileReader reader(path("junk.vrbf")), vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderRejectsMissingFile) {
  EXPECT_THROW(BrickFileReader reader(path("nonexistent.vrbf")), vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderRejectsOutOfRangeBrickIndex) {
  {
    BrickFileWriter writer(path("one.vrbf"), Int3{4, 4, 4}, 4, 0, 1);
    writer.append_brick(Int3{0, 0, 0}, Int3{4, 4, 4}, random_payload(Int3{4, 4, 4}, 3));
    writer.finalize();
  }
  BrickFileReader reader(path("one.vrbf"));
  EXPECT_THROW((void)reader.read_brick(1), vrmr::CheckError);
  EXPECT_THROW((void)reader.record(-1), vrmr::CheckError);
}

TEST_F(BrickFileTest, NonUniformPaddedDimsSupported) {
  // Edge bricks have smaller padded dims; the directory must carry them.
  {
    BrickFileWriter writer(path("edge.vrbf"), Int3{10, 4, 4}, 8, 1, 2);
    writer.append_brick(Int3{0, 0, 0}, Int3{9, 4, 4}, random_payload(Int3{9, 4, 4}, 1));
    writer.append_brick(Int3{1, 0, 0}, Int3{3, 4, 4}, random_payload(Int3{3, 4, 4}, 2));
    writer.finalize();
  }
  BrickFileReader reader(path("edge.vrbf"));
  EXPECT_EQ(reader.record(0).padded_dims, (Int3{9, 4, 4}));
  EXPECT_EQ(reader.record(1).padded_dims, (Int3{3, 4, 4}));
  EXPECT_EQ(reader.read_brick(1).size(), 3u * 4 * 4);
}

TEST_F(BrickFileTest, RleFileStoresFewerBytesAndRoundTripsExactly) {
  // v2 compressed file: a uniform brick shrinks on disk, an
  // incompressible one falls back to raw inside the codec's framing —
  // and both read back exactly, with record(i).bytes telling what the
  // read itself moved.
  const Int3 dims{8, 8, 8};
  const std::vector<float> uniform(static_cast<size_t>(dims.volume()), 0.5f);
  const std::vector<float> noisy = random_payload(dims, 42);
  {
    BrickFileWriter writer(path("rle.vrbf"), Int3{16, 8, 8}, 8, 0, 2,
                           compress::Codec::Rle);
    writer.append_brick(Int3{0, 0, 0}, dims, uniform);
    writer.append_brick(Int3{1, 0, 0}, dims, noisy);
    writer.finalize();
  }
  BrickFileReader reader(path("rle.vrbf"));
  EXPECT_EQ(reader.header().version, 2u);
  const std::uint64_t logical = uniform.size() * sizeof(float);
  EXPECT_EQ(reader.record(0).codec, compress::Codec::Rle);
  EXPECT_EQ(reader.record(0).logical_bytes, logical);
  EXPECT_EQ(reader.record(0).bytes, 8u);  // one (count, value) pair
  EXPECT_EQ(reader.record(1).bytes, logical);  // raw fallback
  EXPECT_EQ(reader.read_brick(0), uniform);
  EXPECT_EQ(reader.read_brick(1), noisy);
}

TEST_F(BrickFileTest, WriterRejectsModeledOnlyCodec) {
  // zfp-style sizes are simulation models; a lossless file cannot
  // store them, so the writer refuses up front.
  EXPECT_THROW(BrickFileWriter(path("zfp.vrbf"), Int3{4, 4, 4}, 4, 0, 1,
                               compress::Codec::ZfpStyle),
               vrmr::CheckError);
}

TEST_F(BrickFileTest, ReaderStillLoadsVersion1Files) {
  // Hand-written v1 file (40-byte records, no codec/logical fields):
  // the reader must load it with codec None and logical == stored.
  const Int3 dims{4, 4, 4};
  const std::vector<float> payload = random_payload(dims, 9);
  {
    std::ofstream out(path("v1.vrbf"), std::ios::binary);
    auto u32 = [&out](std::uint32_t v) {
      out.write(reinterpret_cast<const char*>(&v), 4);
    };
    auto u64 = [&out](std::uint64_t v) {
      out.write(reinterpret_cast<const char*>(&v), 8);
    };
    u32(kBrickFileMagic);
    u32(1);  // version
    u32(4); u32(4); u32(4);  // volume dims
    u32(4);  // brick_size
    u32(0);  // ghost
    u32(1);  // num_bricks
    const std::uint64_t header_and_dir = 8 * 4 + (6 * 4 + 2 * 8);
    u32(0); u32(0); u32(0);  // grid_pos
    u32(4); u32(4); u32(4);  // padded_dims
    u64(header_and_dir);     // offset
    u64(payload.size() * sizeof(float));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size() * sizeof(float)));
  }
  BrickFileReader reader(path("v1.vrbf"));
  EXPECT_EQ(reader.header().version, 1u);
  ASSERT_EQ(reader.num_bricks(), 1);
  EXPECT_EQ(reader.record(0).codec, compress::Codec::None);
  EXPECT_EQ(reader.record(0).logical_bytes, reader.record(0).bytes);
  EXPECT_EQ(reader.read_brick(0), payload);
}

}  // namespace
}  // namespace vrmr::io
