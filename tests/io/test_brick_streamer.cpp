#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "io/brick_file.hpp"
#include "io/brick_streamer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace vrmr::io {
namespace {

namespace fs = std::filesystem;

class BrickStreamerTest : public testing::Test {
 protected:
  static constexpr int kBricks = 6;
  static constexpr Int3 kDims{4, 4, 4};

  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("vrmr_streamer_" + std::to_string(::getpid()) + ".vrbf");
    BrickFileWriter writer(path_, Int3{24, 4, 4}, 4, 0, kBricks);
    for (int i = 0; i < kBricks; ++i) {
      writer.append_brick(Int3{i, 0, 0}, kDims, payload(i));
    }
    writer.finalize();
    reader_ = std::make_unique<BrickFileReader>(path_);
  }
  void TearDown() override { fs::remove(path_); }

  static std::vector<float> payload(int brick) {
    std::vector<float> v(static_cast<size_t>(kDims.volume()));
    Pcg32 rng(static_cast<std::uint64_t>(brick) + 1);
    for (auto& x : v) x = rng.next_float();
    return v;
  }

  fs::path path_;
  std::unique_ptr<BrickFileReader> reader_;
};

TEST_F(BrickStreamerTest, DeliversScheduleInOrder) {
  std::vector<int> schedule(kBricks);
  std::iota(schedule.begin(), schedule.end(), 0);
  BrickStreamer streamer(*reader_, schedule, /*window=*/2);
  for (int i = 0; i < kBricks; ++i) {
    EXPECT_EQ(streamer.next_brick(), i);
    EXPECT_EQ(streamer.consume(), payload(i));
  }
  EXPECT_TRUE(streamer.done());
  EXPECT_EQ(streamer.reads(), static_cast<std::uint64_t>(kBricks));
}

TEST_F(BrickStreamerTest, WindowBoundsResidency) {
  std::vector<int> schedule(kBricks);
  std::iota(schedule.begin(), schedule.end(), 0);
  for (int window : {1, 2, 3}) {
    BrickStreamer streamer(*reader_, schedule, window);
    while (!streamer.done()) {
      EXPECT_LE(streamer.resident(), static_cast<std::size_t>(window));
      (void)streamer.consume();
    }
  }
}

TEST_F(BrickStreamerTest, PrefetchKeepsWindowFull) {
  std::vector<int> schedule{0, 1, 2, 3};
  BrickStreamer streamer(*reader_, schedule, /*window=*/3);
  // Constructor prefetches the first `window` bricks.
  EXPECT_EQ(streamer.resident(), 3u);
  EXPECT_EQ(streamer.reads(), 3u);
  (void)streamer.consume();  // consume 0, prefetch 3
  EXPECT_EQ(streamer.resident(), 3u);
  EXPECT_EQ(streamer.reads(), 4u);
}

TEST_F(BrickStreamerTest, ArbitrarySchedulesAndRepeats) {
  const std::vector<int> schedule{5, 0, 5, 2, 0};
  BrickStreamer streamer(*reader_, schedule, /*window=*/2);
  EXPECT_EQ(streamer.consume(), payload(5));
  EXPECT_EQ(streamer.consume(), payload(0));
  EXPECT_EQ(streamer.consume(), payload(5));  // re-read after retirement
  EXPECT_EQ(streamer.consume(), payload(2));
  EXPECT_EQ(streamer.consume(), payload(0));
  EXPECT_TRUE(streamer.done());
}

TEST_F(BrickStreamerTest, CountsBytes) {
  BrickStreamer streamer(*reader_, {0, 1}, 1);
  (void)streamer.consume();
  (void)streamer.consume();
  EXPECT_EQ(streamer.bytes_read(),
            2ull * static_cast<std::uint64_t>(kDims.volume()) * sizeof(float));
}

TEST_F(BrickStreamerTest, RejectsBadArguments) {
  EXPECT_THROW(BrickStreamer(*reader_, {0}, 0), vrmr::CheckError);       // bad window
  EXPECT_THROW(BrickStreamer(*reader_, {99}, 1), vrmr::CheckError);     // bad brick id
  BrickStreamer streamer(*reader_, {0}, 1);
  (void)streamer.consume();
  EXPECT_THROW((void)streamer.consume(), vrmr::CheckError);  // exhausted
  EXPECT_THROW((void)streamer.next_brick(), vrmr::CheckError);
}

TEST_F(BrickStreamerTest, CompressedFileCountsStoredBytesWithSameReads) {
  // A compressed (v2) file changes what a read COSTS, not how many
  // reads happen: reads() matches the raw-file schedule exactly while
  // bytes_read() counts the encoded streams — here uniform bricks that
  // collapse to one RLE pair each — and consumers still get the full
  // logical payloads.
  const fs::path packed =
      fs::temp_directory_path() /
      ("vrmr_streamer_rle_" + std::to_string(::getpid()) + ".vrbf");
  {
    BrickFileWriter writer(packed, Int3{24, 4, 4}, 4, 0, kBricks,
                           compress::Codec::Rle);
    for (int i = 0; i < kBricks; ++i) {
      const std::vector<float> uniform(static_cast<size_t>(kDims.volume()),
                                       0.125f * static_cast<float>(i));
      writer.append_brick(Int3{i, 0, 0}, kDims, uniform);
    }
    writer.finalize();
  }
  BrickFileReader reader(packed);
  std::vector<int> schedule(kBricks);
  std::iota(schedule.begin(), schedule.end(), 0);
  BrickStreamer streamer(reader, schedule, /*window=*/2);
  for (int i = 0; i < kBricks; ++i) {
    const std::vector<float> voxels = streamer.consume();
    EXPECT_EQ(voxels, std::vector<float>(static_cast<size_t>(kDims.volume()),
                                         0.125f * static_cast<float>(i)));
  }
  EXPECT_EQ(streamer.reads(), static_cast<std::uint64_t>(kBricks));
  EXPECT_EQ(streamer.bytes_read(), static_cast<std::uint64_t>(kBricks) * 8u);
  fs::remove(packed);
}

TEST_F(BrickStreamerTest, EmptyScheduleIsImmediatelyDone) {
  BrickStreamer streamer(*reader_, {}, 2);
  EXPECT_TRUE(streamer.done());
  EXPECT_EQ(streamer.remaining(), 0u);
  EXPECT_EQ(streamer.reads(), 0u);
}

}  // namespace
}  // namespace vrmr::io
