#include <gtest/gtest.h>

#include "io/disk.hpp"
#include "sim/engine.hpp"

namespace vrmr::io {
namespace {

TEST(DiskModel, ReadTimeIsSeekPlusTransfer) {
  DiskModel m{.seek_latency_s = 0.01, .bandwidth_Bps = 1e6};
  EXPECT_DOUBLE_EQ(m.read_time(0), 0.01);
  EXPECT_DOUBLE_EQ(m.read_time(1000000), 1.01);
}

// The paper's calibration anchor (§3): a 64³ float brick (1 MiB) loads
// in ≈20 ms on the default model.
TEST(DiskModel, PaperAnchorSixtyFourCubedBrick) {
  const DiskModel m;  // defaults = NCSA calibration
  const std::uint64_t brick_bytes = 64ULL * 64 * 64 * sizeof(float);
  const double t = m.read_time(brick_bytes);
  EXPECT_GT(t, 0.015);
  EXPECT_LT(t, 0.025);
}

TEST(VirtualDisk, ReadsSerialize) {
  sim::Engine e;
  VirtualDisk disk(e, DiskModel{.seek_latency_s = 0.0, .bandwidth_Bps = 1e6}, "disk0");
  std::vector<double> done;
  e.schedule_at(0.0, [&] {
    disk.read(1000000, [&] { done.push_back(e.now()); });
    disk.read(1000000, [&] { done.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
  EXPECT_EQ(disk.bytes_read(), 2000000u);
  EXPECT_NEAR(disk.resource().busy_time(), 2.0, 1e-9);
}

TEST(VirtualDisk, SeekChargedPerRead) {
  sim::Engine e;
  VirtualDisk disk(e, DiskModel{.seek_latency_s = 0.5, .bandwidth_Bps = 1e9}, "disk0");
  double end = 0.0;
  e.schedule_at(0.0, [&] {
    for (int i = 0; i < 4; ++i) disk.read(1, [&] { end = e.now(); });
  });
  e.run();
  EXPECT_NEAR(end, 2.0, 1e-6);  // 4 seeks dominate
}

}  // namespace
}  // namespace vrmr::io
