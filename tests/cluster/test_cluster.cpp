#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"

namespace vrmr::cluster {
namespace {

TEST(ClusterConfig, ValidateRejectsNonPositive) {
  ClusterConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(cfg.validate(), vrmr::CheckError);
  cfg.num_nodes = 1;
  cfg.gpus_per_node = 0;
  EXPECT_THROW(cfg.validate(), vrmr::CheckError);
}

TEST(ClusterConfig, WithTotalGpusPacksFourPerNode) {
  // The paper's sweep points (§4.1: 4 logical GPUs per node).
  EXPECT_EQ(ClusterConfig::with_total_gpus(1).num_nodes, 1);
  EXPECT_EQ(ClusterConfig::with_total_gpus(1).gpus_per_node, 1);
  EXPECT_EQ(ClusterConfig::with_total_gpus(4).num_nodes, 1);
  EXPECT_EQ(ClusterConfig::with_total_gpus(8).num_nodes, 2);
  EXPECT_EQ(ClusterConfig::with_total_gpus(8).gpus_per_node, 4);
  EXPECT_EQ(ClusterConfig::with_total_gpus(32).num_nodes, 8);
}

TEST(ClusterConfig, WithTotalGpusHandlesAwkwardCounts) {
  for (int g = 1; g <= 33; ++g) {
    const ClusterConfig cfg = ClusterConfig::with_total_gpus(g);
    EXPECT_EQ(cfg.total_gpus(), g) << g;
    EXPECT_LE(cfg.gpus_per_node, 4) << g;
  }
  // 6 GPUs: 2 nodes x 3 beats 6 nodes x 1.
  EXPECT_EQ(ClusterConfig::with_total_gpus(6).gpus_per_node, 3);
}

TEST(Cluster, BuildsTopology) {
  sim::Engine e;
  Cluster cluster(e, ClusterConfig::with_total_gpus(8));
  EXPECT_EQ(cluster.num_nodes(), 2);
  EXPECT_EQ(cluster.total_gpus(), 8);
  EXPECT_EQ(cluster.node_of_gpu(0), 0);
  EXPECT_EQ(cluster.node_of_gpu(3), 0);
  EXPECT_EQ(cluster.node_of_gpu(4), 1);
  EXPECT_EQ(cluster.node_of_gpu(7), 1);
  EXPECT_EQ(cluster.fabric().num_nodes(), 2);
  EXPECT_EQ(cluster.cpu(0).servers(), 4);
}

TEST(Cluster, GpusAreDistinctDevices) {
  sim::Engine e;
  Cluster cluster(e, ClusterConfig::with_total_gpus(4));
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(cluster.gpu(g).id(), g);
    EXPECT_EQ(cluster.gpu(g).vram_used(), 0u);
  }
  const auto alloc = cluster.gpu(2).allocate(1024, "x");
  EXPECT_EQ(cluster.gpu(2).vram_used(), 1024u);
  EXPECT_EQ(cluster.gpu(1).vram_used(), 0u);
}

TEST(Cluster, BusyTotalsAggregateResources) {
  sim::Engine e;
  Cluster cluster(e, ClusterConfig::with_total_gpus(2));
  e.schedule_at(0.0, [&] {
    cluster.gpu_stream(0).acquire(1.0, nullptr);
    cluster.gpu_stream(1).acquire(2.0, nullptr);
    cluster.pcie(0).acquire(0.5, nullptr);
    cluster.disk(0).read(75000000, nullptr);  // 1 s at default 75 MB/s + seek
  });
  e.run();
  EXPECT_DOUBLE_EQ(cluster.total_gpu_busy(), 3.0);
  EXPECT_DOUBLE_EQ(cluster.total_pcie_busy(), 0.5);
  EXPECT_NEAR(cluster.total_disk_busy(), 1.005, 1e-9);
  EXPECT_EQ(cluster.total_nic_busy(), 0.0);
}

TEST(HardwareModel, NcsaCalibrationAnchors) {
  const HardwareModel hw = HardwareModel::ncsa_accelerator_cluster();
  const std::uint64_t brick64 = 64ULL * 64 * 64 * sizeof(float);
  // §3: 64³ brick from disk ≈ 20 ms.
  EXPECT_NEAR(hw.disk.read_time(brick64), 0.020, 0.005);
  // §3: same brick over PCIe < 0.2 ms.
  EXPECT_LT(hw.pcie.transfer_time(brick64), 0.2e-3);
  // §3: transfer is <1% of the disk load time.
  EXPECT_LT(hw.pcie.transfer_time(brick64) / hw.disk.read_time(brick64), 0.01);
  // Quad-core nodes.
  EXPECT_EQ(hw.cpu.cores, 4);
}

}  // namespace
}  // namespace vrmr::cluster
